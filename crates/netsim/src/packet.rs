//! Packets and acknowledgments.
//!
//! The simulator models two kinds of traffic: data packets flowing from a
//! sender through the (possibly congested) forward path, and per-packet
//! acknowledgments returning to the sender. ACKs echo the sender's
//! transmission timestamp — the Tao protocols' `send_ewma` and `rtt_ratio`
//! congestion signals are computed from this echo, exactly as in the paper
//! (§3.3).
//!
//! Both kinds are the same [`Packet`] struct: an acknowledgment is a
//! packet travelling in [`PacketDir::Ack`] whose echo fields reuse the
//! data packet's slots (`sent_at`/`tx_index`/`is_retx` become the echoes)
//! plus the receiver timestamp `recv_at`. On links whose [`ReverseSpec`]
//! declares an explicit reverse channel, ACK packets traverse real
//! [`crate::link::Link`] objects — queueing, serializing and (under an AQM
//! or a full buffer) dropping exactly like data; without one, the engine
//! keeps the paper's uncongested-reverse arithmetic.
//!
//! [`ReverseSpec`]: crate::topology::ReverseSpec

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a flow (sender/receiver pair). Index into the simulator's
/// sender table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// Identifies a unidirectional link. Index into the simulator's link table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Default MTU-sized data packet payload, matching the 1500-byte packets the
/// paper's ns-2 setup uses.
pub const DATA_PACKET_BYTES: u32 = 1500;

/// Size of a returning acknowledgment (TCP ACK-sized).
pub const ACK_BYTES: u32 = 40;

/// Direction a packet is travelling: data toward the receiver, or an
/// acknowledgment returning to the sender over the reverse path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PacketDir {
    /// A data packet on the forward path.
    #[default]
    Data,
    /// An acknowledgment on the reverse path. The echo fields
    /// (`sent_at`, `tx_index`, `is_retx`) describe the acknowledged data
    /// packet, and `recv_at` stamps its delivery at the receiver.
    Ack,
}

/// Longest route (in links) the packed 6-bit hop index supports.
/// Enforced by [`crate::topology::NetworkConfig::validate`], so a hop
/// can never overflow into the flag bits.
pub const MAX_ROUTE_LINKS: usize = HOP_MASK as usize + 1;

/// Flag byte layout (see [`Packet::flags`]).
const HOP_MASK: u8 = 0x3f;
const FLAG_RETX: u8 = 0x40;
const FLAG_ACK: u8 = 0x80;

/// A packet in flight — data or acknowledgment (see [`PacketDir`]).
///
/// The struct is kept to 48 bytes (six words — `const`-asserted in the
/// tests): the event queue carries packets by value on the hottest path
/// in the simulator, so direction, retransmission flag and hop index are
/// packed into one flag byte behind accessors, the ack-coalescing fields
/// are `u16` (bounds enforced by config validation), and the payload
/// size is derived from the direction rather than stored — every data
/// packet is MTU-sized ([`DATA_PACKET_BYTES`]) and every acknowledgment
/// is [`ACK_BYTES`], exactly as in the paper's setup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Sequence number within the flow epoch (for an ACK: the sequence
    /// being acknowledged).
    pub seq: u64,
    /// Sender timestamp at (re)transmission; echoed back in the ACK.
    pub sent_at: SimTime,
    /// Monotonic per-sender transmission index, used by the reliability
    /// layer's reordering-window loss detector.
    pub tx_index: u64,
    /// Receiver timestamp when the acknowledged data packet arrived
    /// ([`PacketDir::Ack`] only; `SimTime::ZERO` on data packets).
    pub recv_at: SimTime,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Flow epoch: incremented each time the ON/OFF workload restarts the
    /// flow, so stale in-flight packets from a previous burst are ignored.
    pub epoch: u32,
    /// Number of consecutive sequence numbers ending at `seq` that this
    /// acknowledgment covers (delayed/stretch ACKs coalesce a run of
    /// in-order deliveries into one ACK). `1` on data packets and on
    /// plain per-packet acknowledgments — the default everywhere.
    pub batch: u16,
    /// Advertised receive window in packets ([`PacketDir::Ack`] only).
    /// `0` means "no advertisement": the receiver does not constrain the
    /// sender, which is the pre-[`crate::topology::ReceiverSpec`]
    /// behavior and the default.
    pub rwnd: u16,
    /// Packed direction (bit 7), retransmission flag (bit 6) and hop
    /// index (bits 0–5); read through [`Packet::dir`],
    /// [`Packet::is_retx`] and [`Packet::hop`].
    flags: u8,
}

impl Packet {
    /// A freshly (re)transmitted MTU-sized data packet at the first hop
    /// of its route. This is the only data-packet constructor — the
    /// transport's `produce` builds every transmission here.
    pub fn data(
        flow: FlowId,
        seq: u64,
        epoch: u32,
        sent_at: SimTime,
        tx_index: u64,
        is_retx: bool,
    ) -> Packet {
        Packet {
            seq,
            sent_at,
            tx_index,
            recv_at: SimTime::ZERO,
            flow,
            epoch,
            batch: 1,
            rwnd: 0,
            flags: if is_retx { FLAG_RETX } else { 0 },
        }
    }

    /// The acknowledgment packet for a delivered data packet: an
    /// ACK-sized packet travelling in reverse whose echo fields copy the
    /// data packet's, stamped with the receiver's delivery time. This is
    /// the **only** ACK constructor — every acknowledgment in the engine
    /// is built here, so the direction bit (and the `batch`/`rwnd`
    /// defaults of a plain per-packet ack) can never be forgotten at a
    /// call site.
    pub fn ack_for(data: &Packet, recv_at: SimTime) -> Packet {
        debug_assert_eq!(data.dir(), PacketDir::Data, "acks acknowledge data");
        Packet {
            seq: data.seq,
            sent_at: data.sent_at,
            tx_index: data.tx_index,
            recv_at,
            flow: data.flow,
            epoch: data.epoch,
            batch: 1,
            rwnd: 0,
            flags: FLAG_ACK | (data.flags & FLAG_RETX),
        }
    }

    /// Which direction this packet is travelling.
    #[inline]
    pub fn dir(&self) -> PacketDir {
        if self.flags & FLAG_ACK != 0 {
            PacketDir::Ack
        } else {
            PacketDir::Data
        }
    }

    /// True if this is a retransmission (for an ACK: whether the
    /// acknowledged packet was one).
    #[inline]
    pub fn is_retx(&self) -> bool {
        self.flags & FLAG_RETX != 0
    }

    /// Remaining hops: index into the flow's route (data) or ACK route
    /// (acknowledgment) of the *next* link to traverse after this one.
    #[inline]
    pub fn hop(&self) -> u8 {
        self.flags & HOP_MASK
    }

    /// Advance the packet to route hop `hop` (< [`MAX_ROUTE_LINKS`]).
    #[inline]
    pub fn set_hop(&mut self, hop: u8) {
        debug_assert!(hop <= HOP_MASK, "route depth exceeds MAX_ROUTE_LINKS");
        self.flags = (self.flags & !HOP_MASK) | (hop & HOP_MASK);
    }

    /// Payload size in bytes (transmission time = size * 8 / link rate),
    /// determined by the direction: every data packet is MTU-sized and
    /// every acknowledgment is ACK-sized.
    #[inline]
    pub fn size(&self) -> u32 {
        if self.flags & FLAG_ACK != 0 {
            ACK_BYTES
        } else {
            DATA_PACKET_BYTES
        }
    }

    /// The transport-facing [`Ack`] view of an acknowledgment packet.
    pub fn as_ack(&self) -> Ack {
        debug_assert_eq!(self.dir(), PacketDir::Ack, "not an acknowledgment");
        Ack {
            flow: self.flow,
            seq: self.seq,
            epoch: self.epoch,
            echo_sent_at: self.sent_at,
            echo_tx_index: self.tx_index,
            recv_at: self.recv_at,
            was_retx: self.is_retx(),
            batch: self.batch as u32,
            rwnd: self.rwnd as u32,
        }
    }
}

/// Compile-time size regression gate: the event queue moves packets by
/// value on the hottest path, so `Packet` growing past six words is a
/// perf bug someone must consciously sign off on (by editing this
/// assertion).
const _PACKET_IS_SIX_WORDS: () = assert!(std::mem::size_of::<Packet>() <= 48);

/// An acknowledgment returning to the sender.
///
/// The receiver acknowledges every data packet individually (selective
/// per-packet acks, as in Remy's simulator), echoing the data packet's
/// sender timestamp and stamping its own arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ack {
    /// The flow this acknowledgment belongs to.
    pub flow: FlowId,
    /// Sequence number of the data packet being acknowledged (the
    /// *highest* covered sequence when `batch > 1`).
    pub seq: u64,
    /// Flow epoch of the acknowledged packet.
    pub epoch: u32,
    /// Echo of `Packet::sent_at`; `now - echo_sent_at` is an RTT sample.
    pub echo_sent_at: SimTime,
    /// Echo of `Packet::tx_index` for the loss detector.
    pub echo_tx_index: u64,
    /// Receiver timestamp when the data packet arrived.
    pub recv_at: SimTime,
    /// Whether the acknowledged packet was a retransmission.
    pub was_retx: bool,
    /// Number of consecutive sequences ending at `seq` this ack covers
    /// (`1` = plain per-packet ack; `> 1` = delayed/stretch ack — the
    /// transport removes `seq - batch + 1 ..= seq` from its in-flight
    /// set, taking echo/RTT state from the top sequence only).
    pub batch: u32,
    /// Advertised receive window in packets; `0` = no advertisement.
    pub rwnd: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn rtt_from_echo() {
        let sent = SimTime::from_secs_f64(1.0);
        let ack = Ack {
            flow: FlowId(0),
            seq: 5,
            epoch: 0,
            echo_sent_at: sent,
            echo_tx_index: 5,
            recv_at: sent + SimDuration::from_millis(75),
            was_retx: false,
            batch: 1,
            rwnd: 0,
        };
        let now = sent + SimDuration::from_millis(150);
        assert_eq!((now - ack.echo_sent_at).as_millis_f64(), 150.0);
    }

    #[test]
    fn ack_packet_round_trip() {
        let mut data = Packet::data(FlowId(3), 17, 2, SimTime::from_secs_f64(1.0), 21, true);
        data.set_hop(1);
        assert_eq!(data.dir(), PacketDir::Data);
        assert_eq!(data.size(), DATA_PACKET_BYTES);
        assert_eq!(data.hop(), 1);
        assert!(data.is_retx());
        let recv = SimTime::from_secs_f64(1.075);
        let ap = Packet::ack_for(&data, recv);
        assert_eq!(ap.dir(), PacketDir::Ack);
        assert_eq!(ap.size(), ACK_BYTES);
        assert_eq!(ap.hop(), 0, "ack starts at the first reverse hop");
        assert_eq!(ap.batch, 1, "per-packet ack by default");
        assert_eq!(ap.rwnd, 0, "no receive-window advertisement by default");
        let ack = ap.as_ack();
        assert_eq!(ack.flow, FlowId(3));
        assert_eq!(ack.seq, 17);
        assert_eq!(ack.epoch, 2);
        assert_eq!(ack.echo_sent_at, data.sent_at);
        assert_eq!(ack.echo_tx_index, 21);
        assert_eq!(ack.recv_at, recv);
        assert!(ack.was_retx);
        assert_eq!(ack.batch, 1);
        assert_eq!(ack.rwnd, 0);
        // A coalesced ack carries its batch count and advertisement
        // through the packet -> Ack conversion untouched.
        let mut stretch = ap;
        stretch.batch = 4;
        stretch.rwnd = 32;
        let ack = stretch.as_ack();
        assert_eq!(ack.batch, 4);
        assert_eq!(ack.rwnd, 32);
    }

    #[test]
    fn packet_stays_within_six_words() {
        assert_eq!(std::mem::size_of::<Packet>(), 48);
        assert!(std::mem::align_of::<Packet>() <= 8);
    }

    #[test]
    fn hop_flags_round_trip_across_full_range() {
        let mut p = Packet::data(FlowId(1), 1, 0, SimTime::ZERO, 1, false);
        for hop in (0..=MAX_ROUTE_LINKS as u8 - 1).rev() {
            p.set_hop(hop);
            assert_eq!(p.hop(), hop);
            assert_eq!(p.dir(), PacketDir::Data, "hop writes never leak into dir");
            assert!(!p.is_retx(), "hop writes never leak into retx");
        }
        let mut r = Packet::data(FlowId(1), 1, 0, SimTime::ZERO, 1, true);
        r.set_hop(63);
        assert!(r.is_retx());
        assert_eq!(r.hop(), 63);
        let a = Packet::ack_for(&r, SimTime::ZERO);
        assert_eq!(a.dir(), PacketDir::Ack);
        assert!(a.is_retx(), "ack echoes the retx flag");
        assert_eq!(a.hop(), 0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        s.insert(FlowId(1));
        assert_eq!(s.len(), 2);
        assert!(LinkId(0) < LinkId(3));
    }
}
