//! Queueing disciplines at bottleneck gateways.
//!
//! The paper trains every protocol against FIFO drop-tail queues (finite
//! buffers measured in bandwidth-delay products, or an infinite "no drop"
//! buffer for the extreme multiplexing case of Fig 3) and additionally tests
//! Cubic over sfqCoDel. The discipline is pluggable per link.

use crate::packet::Packet;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A packet resting in a queue, stamped with its enqueue time (CoDel keys
/// its drop law off sojourn time).
#[derive(Clone, Copy, Debug)]
pub struct QueuedPacket {
    /// The queued packet.
    pub pkt: Packet,
    /// When the packet entered the queue.
    pub enqueued_at: SimTime,
}

/// Counters every discipline maintains; the study's figures read drops and
/// occupancy from here.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped (on enqueue or dequeue).
    pub dropped: u64,
    /// Packets handed to the link for transmission.
    pub dequeued: u64,
}

/// A queueing discipline attached to a link.
///
/// The link calls [`enqueue`](QueueDiscipline::enqueue) when a packet
/// arrives while the link is busy, and [`dequeue`](QueueDiscipline::dequeue)
/// each time it finishes serializing a packet. Disciplines may drop on
/// enqueue (drop-tail) or on dequeue (CoDel).
pub trait QueueDiscipline: Send {
    /// Offer a packet to the queue at time `now`. Returns `false` if the
    /// packet was dropped.
    fn enqueue(&mut self, qp: QueuedPacket, now: SimTime) -> bool;

    /// Pull the next packet to transmit. CoDel-style disciplines may drop
    /// packets internally before returning one.
    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket>;

    /// Queue occupancy in packets.
    fn len_packets(&self) -> usize;

    /// Queue occupancy in bytes.
    fn len_bytes(&self) -> u64;

    /// Lifetime enqueue/drop counters.
    fn stats(&self) -> QueueStats;

    /// Short discipline name for traces and figures.
    fn name(&self) -> &'static str;
}

/// Declarative queue configuration; built into a boxed discipline by the
/// topology layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueueSpec {
    /// FIFO with a byte capacity; `None` means infinite ("no drop" in
    /// Table 3b).
    DropTail {
        /// Byte capacity; `None` means infinite.
        capacity_bytes: Option<u64>,
    },
    /// Stochastic fair queueing with per-bin CoDel and DRR scheduling
    /// (the paper's sfqCoDel gateway).
    SfqCodel {
        /// Hard byte capacity backstop.
        capacity_bytes: u64,
        /// CoDel target sojourn time, milliseconds.
        target_ms: f64,
        /// CoDel control interval, milliseconds.
        interval_ms: f64,
        /// Number of stochastic-fair hash bins.
        bins: u32,
    },
    /// Random Early Detection (gentle variant) with a byte-capacity
    /// backstop; thresholds in packets.
    Red {
        /// Hard byte capacity backstop.
        capacity_bytes: u64,
        /// Lower average-occupancy threshold, packets.
        min_th: f64,
        /// Upper average-occupancy threshold, packets.
        max_th: f64,
        /// Mark/drop probability at `max_th`.
        max_p: f64,
    },
    /// A single CoDel-managed FIFO with a byte-capacity backstop (the
    /// plain-CoDel gateway of the AQM ablation; no per-flow isolation).
    Codel {
        /// Hard byte capacity backstop.
        capacity_bytes: u64,
        /// CoDel target sojourn time, milliseconds.
        target_ms: f64,
        /// CoDel control interval, milliseconds.
        interval_ms: f64,
    },
}

/// The default queue is an infinite FIFO — the "no packet drops" buffer.
/// (Used by `#[serde(default)]` fields, e.g. a [`ReverseSpec`] queue.)
///
/// [`ReverseSpec`]: crate::topology::ReverseSpec
impl Default for QueueSpec {
    fn default() -> Self {
        QueueSpec::infinite()
    }
}

impl QueueSpec {
    /// Drop-tail sized to `bdp_multiple` bandwidth-delay products.
    pub fn drop_tail_bdp(rate_bps: f64, min_rtt_s: f64, bdp_multiple: f64) -> QueueSpec {
        let bdp_bytes = rate_bps / 8.0 * min_rtt_s;
        QueueSpec::DropTail {
            capacity_bytes: Some((bdp_bytes * bdp_multiple).ceil().max(3000.0) as u64),
        }
    }

    /// Infinite FIFO (the "no packet drops" buffer of Fig 3's right panel).
    pub fn infinite() -> QueueSpec {
        QueueSpec::DropTail {
            capacity_bytes: None,
        }
    }

    /// sfqCoDel with the reference parameters (5 ms target, 100 ms interval).
    pub fn sfq_codel_default(rate_bps: f64, min_rtt_s: f64, bdp_multiple: f64) -> QueueSpec {
        let bdp_bytes = rate_bps / 8.0 * min_rtt_s;
        QueueSpec::SfqCodel {
            capacity_bytes: (bdp_bytes * bdp_multiple).ceil().max(3000.0) as u64,
            target_ms: 5.0,
            interval_ms: 100.0,
            bins: 1024,
        }
    }

    /// Buffer capacity of this queue in bytes; `None` means infinite (the
    /// "no packet drops" buffer of Fig 3's right panel).
    ///
    /// This match is deliberately exhaustive — adding a `QueueSpec`
    /// variant without deciding its capacity semantics is a compile error,
    /// so capacity-dependent consumers (e.g. the sfqCoDel conversion in
    /// `lcc-core`) can never silently mishandle a new discipline.
    pub fn capacity_bytes(&self) -> Option<u64> {
        match *self {
            QueueSpec::DropTail { capacity_bytes } => capacity_bytes,
            QueueSpec::SfqCodel { capacity_bytes, .. } => Some(capacity_bytes),
            QueueSpec::Red { capacity_bytes, .. } => Some(capacity_bytes),
            QueueSpec::Codel { capacity_bytes, .. } => Some(capacity_bytes),
        }
    }

    /// Instantiate the discipline (`salt` seeds sfqCoDel’s hash).
    pub fn build(&self, salt: u64) -> Box<dyn QueueDiscipline> {
        match *self {
            QueueSpec::DropTail { capacity_bytes } => Box::new(DropTail::new(capacity_bytes)),
            QueueSpec::SfqCodel {
                capacity_bytes,
                target_ms,
                interval_ms,
                bins,
            } => Box::new(crate::sfq_codel::SfqCodel::new(
                capacity_bytes,
                crate::codel::CodelParams {
                    target: crate::time::SimDuration::from_millis_f64(target_ms),
                    interval: crate::time::SimDuration::from_millis_f64(interval_ms),
                },
                bins,
                salt,
            )),
            QueueSpec::Red {
                capacity_bytes,
                min_th,
                max_th,
                max_p,
            } => Box::new(crate::red::Red::new(
                capacity_bytes,
                crate::red::RedParams {
                    min_th,
                    max_th,
                    max_p,
                    ..Default::default()
                },
                salt,
            )),
            QueueSpec::Codel {
                capacity_bytes,
                target_ms,
                interval_ms,
            } => Box::new(crate::codel::CodelQueue::new(
                capacity_bytes,
                crate::codel::CodelParams {
                    target: crate::time::SimDuration::from_millis_f64(target_ms),
                    interval: crate::time::SimDuration::from_millis_f64(interval_ms),
                },
            )),
        }
    }

    /// Plain CoDel with the reference parameters (5 ms target, 100 ms
    /// interval) over a `bdp_multiple`-BDP buffer.
    pub fn codel_default(rate_bps: f64, min_rtt_s: f64, bdp_multiple: f64) -> QueueSpec {
        let bdp_bytes = rate_bps / 8.0 * min_rtt_s;
        QueueSpec::Codel {
            capacity_bytes: (bdp_bytes * bdp_multiple).ceil().max(3000.0) as u64,
            target_ms: 5.0,
            interval_ms: 100.0,
        }
    }

    /// RED sized to the buffer's packet capacity.
    pub fn red_default(rate_bps: f64, min_rtt_s: f64, bdp_multiple: f64) -> QueueSpec {
        let cap_bytes = (rate_bps / 8.0 * min_rtt_s * bdp_multiple)
            .ceil()
            .max(3000.0) as u64;
        let params = crate::red::RedParams::for_capacity((cap_bytes / 1500) as usize);
        QueueSpec::Red {
            capacity_bytes: cap_bytes,
            min_th: params.min_th,
            max_th: params.max_th,
            max_p: params.max_p,
        }
    }
}

/// FIFO drop-tail queue: the discipline of every training scenario in the
/// paper (§3.1, item 4).
#[derive(Debug)]
pub struct DropTail {
    q: VecDeque<QueuedPacket>,
    bytes: u64,
    capacity_bytes: Option<u64>,
    stats: QueueStats,
}

impl DropTail {
    /// An empty FIFO; `None` capacity means never drop.
    pub fn new(capacity_bytes: Option<u64>) -> Self {
        DropTail {
            q: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            stats: QueueStats::default(),
        }
    }
}

impl QueueDiscipline for DropTail {
    fn enqueue(&mut self, qp: QueuedPacket, _now: SimTime) -> bool {
        if let Some(cap) = self.capacity_bytes {
            if self.bytes + qp.pkt.size() as u64 > cap {
                self.stats.dropped += 1;
                return false;
            }
        }
        self.bytes += qp.pkt.size() as u64;
        self.stats.enqueued += 1;
        self.q.push_back(qp);
        true
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedPacket> {
        let qp = self.q.pop_front()?;
        self.bytes -= qp.pkt.size() as u64;
        self.stats.dequeued += 1;
        Some(qp)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "droptail"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    pub(crate) fn pkt(flow: u32, seq: u64, size: u32) -> Packet {
        let data = Packet::data(FlowId(flow), seq, 0, SimTime::ZERO, seq, false);
        if size == crate::packet::ACK_BYTES {
            Packet::ack_for(&data, SimTime::ZERO)
        } else {
            data
        }
    }

    fn qp(flow: u32, seq: u64, size: u32) -> QueuedPacket {
        QueuedPacket {
            pkt: pkt(flow, seq, size),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTail::new(None);
        for i in 0..5 {
            assert!(q.enqueue(qp(0, i, 1500), SimTime::ZERO));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().pkt.seq, i);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTail::new(Some(3000));
        assert!(q.enqueue(qp(0, 0, 1500), SimTime::ZERO));
        assert!(q.enqueue(qp(0, 1, 1500), SimTime::ZERO));
        assert!(!q.enqueue(qp(0, 2, 1500), SimTime::ZERO), "over capacity");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 3000);
        // draining frees capacity
        q.dequeue(SimTime::ZERO);
        assert!(q.enqueue(qp(0, 3, 1500), SimTime::ZERO));
    }

    #[test]
    fn infinite_never_drops() {
        let mut q = DropTail::new(None);
        for i in 0..10_000 {
            assert!(q.enqueue(qp(0, i, 1500), SimTime::ZERO));
        }
        assert_eq!(q.stats().dropped, 0);
        assert_eq!(q.len_packets(), 10_000);
    }

    #[test]
    fn byte_accounting_mixed_sizes() {
        let mut q = DropTail::new(Some(4000));
        assert!(q.enqueue(qp(0, 0, 1500), SimTime::ZERO));
        assert!(q.enqueue(qp(0, 1, 40), SimTime::ZERO));
        assert!(q.enqueue(qp(0, 2, 1500), SimTime::ZERO));
        assert_eq!(q.len_bytes(), 3040);
        assert!(!q.enqueue(qp(0, 3, 1500), SimTime::ZERO));
        assert!(
            q.enqueue(qp(0, 4, 40), SimTime::ZERO),
            "small packet still fits"
        );
    }

    #[test]
    fn capacity_bytes_covers_every_variant() {
        assert_eq!(QueueSpec::infinite().capacity_bytes(), None);
        assert_eq!(
            QueueSpec::DropTail {
                capacity_bytes: Some(9000)
            }
            .capacity_bytes(),
            Some(9000)
        );
        assert_eq!(
            QueueSpec::sfq_codel_default(8e6, 0.1, 1.0).capacity_bytes(),
            Some(100_000)
        );
        assert_eq!(
            QueueSpec::red_default(8e6, 0.1, 1.0).capacity_bytes(),
            Some(100_000)
        );
        assert_eq!(
            QueueSpec::codel_default(8e6, 0.1, 1.0).capacity_bytes(),
            Some(100_000)
        );
    }

    #[test]
    fn bdp_spec_sizing() {
        // 32 Mbps * 150 ms = 600 kB BDP; 5 BDP = 3 MB
        let spec = QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0);
        match spec {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => assert_eq!(c, 3_000_000),
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
