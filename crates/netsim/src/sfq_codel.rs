//! sfqCoDel: stochastic fair queueing with per-bin CoDel.
//!
//! The paper's in-network baseline ("Cubic-over-sfqCoDel") runs sfqCoDel at
//! bottleneck gateways: flows are hashed into bins, each bin is a
//! CoDel-managed FIFO, and bins are served by deficit round robin with an
//! MTU quantum — following Pollere's reference `sfqcodel.cc` and McKenney's
//! stochastic fairness queueing (INFOCOM 1990).

use crate::codel::{Codel, CodelParams};
use crate::queue::{QueueDiscipline, QueueStats, QueuedPacket};
use crate::time::SimTime;
use std::collections::VecDeque;

const DRR_QUANTUM_BYTES: i64 = 1500;

#[derive(Debug)]
struct Bin {
    codel: Codel,
    deficit: i64,
    /// Whether this bin is currently on the active list.
    active: bool,
}

/// Stochastic fair queueing + CoDel discipline.
pub struct SfqCodel {
    bins: Vec<Bin>,
    /// Round-robin list of active (non-empty) bin indices.
    active: VecDeque<usize>,
    capacity_bytes: u64,
    bytes: u64,
    hash_salt: u64,
    stats: QueueStats,
}

impl SfqCodel {
    /// An empty sfqCoDel gateway with `nbins` flow bins; `hash_salt` keys the flow hash.
    pub fn new(capacity_bytes: u64, params: CodelParams, nbins: u32, hash_salt: u64) -> Self {
        let nbins = nbins.max(1) as usize;
        SfqCodel {
            bins: (0..nbins)
                .map(|_| Bin {
                    codel: Codel::new(params),
                    deficit: 0,
                    active: false,
                })
                .collect(),
            active: VecDeque::new(),
            capacity_bytes,
            bytes: 0,
            hash_salt,
            stats: QueueStats::default(),
        }
    }

    fn bin_of(&self, flow: u32) -> usize {
        // Fibonacci-style hash of (flow, salt): stochastic assignment whose
        // collisions depend on the salt, as in SFQ's perturbed hashing.
        let x = (flow as u64 ^ self.hash_salt).wrapping_mul(0x9E3779B97F4A7C15);
        (x >> 33) as usize % self.bins.len()
    }

    fn activate(&mut self, idx: usize) {
        if !self.bins[idx].active {
            self.bins[idx].active = true;
            // New flows get a fresh quantum (new-flow priority simplified to
            // tail insertion with reset deficit, as in the reference when a
            // bin re-activates).
            self.bins[idx].deficit = DRR_QUANTUM_BYTES;
            self.active.push_back(idx);
        }
    }
}

impl QueueDiscipline for SfqCodel {
    fn enqueue(&mut self, qp: QueuedPacket, _now: SimTime) -> bool {
        if self.bytes + qp.pkt.size() as u64 > self.capacity_bytes {
            self.stats.dropped += 1;
            return false;
        }
        let idx = self.bin_of(qp.pkt.flow.0);
        self.bytes += qp.pkt.size() as u64;
        self.stats.enqueued += 1;
        self.bins[idx].codel.push(qp);
        self.activate(idx);
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        // DRR over active bins; each bin's CoDel may shed packets while we
        // look for one to forward.
        let mut rounds = 0usize;
        let max_rounds = self.active.len().saturating_mul(2) + self.bins.len() + 2;
        while let Some(&idx) = self.active.front() {
            rounds += 1;
            if rounds > max_rounds.max(64) {
                break; // defensive: cannot happen with correct accounting
            }
            if self.bins[idx].deficit <= 0 {
                // Exhausted its quantum: move to the back with a refill.
                self.active.pop_front();
                self.bins[idx].deficit += DRR_QUANTUM_BYTES;
                self.active.push_back(idx);
                continue;
            }
            let before = self.bins[idx].codel.len_bytes();
            match self.bins[idx].codel.dequeue(now) {
                Some(qp) => {
                    let freed = before - self.bins[idx].codel.len_bytes();
                    self.bytes -= freed;
                    self.bins[idx].deficit -= qp.pkt.size() as i64;
                    // CoDel drops count against the shared buffer too.
                    if self.bins[idx].codel.len_packets() == 0 {
                        self.bins[idx].active = false;
                        self.active.retain(|&i| i != idx);
                    }
                    self.stats.dequeued += 1;
                    return Some(qp);
                }
                None => {
                    // CoDel shed the whole remaining bin contents.
                    let freed = before - self.bins[idx].codel.len_bytes();
                    self.bytes -= freed;
                    self.bins[idx].active = false;
                    self.active.retain(|&i| i != idx);
                }
            }
        }
        None
    }

    fn len_packets(&self) -> usize {
        self.bins.iter().map(|b| b.codel.len_packets()).sum()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn stats(&self) -> QueueStats {
        // Fold per-bin CoDel drops into the aggregate.
        let codel_drops: u64 = self.bins.iter().map(|b| b.codel.stats().dropped).sum();
        QueueStats {
            enqueued: self.stats.enqueued,
            dropped: self.stats.dropped + codel_drops,
            dequeued: self.stats.dequeued,
        }
    }

    fn name(&self) -> &'static str {
        "sfqcodel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::time::SimDuration;

    fn qp(flow: u32, seq: u64, at: SimTime) -> QueuedPacket {
        QueuedPacket {
            pkt: Packet::data(FlowId(flow), seq, 0, at, seq, false),
            enqueued_at: at,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn make(capacity: u64) -> SfqCodel {
        SfqCodel::new(capacity, CodelParams::default(), 1024, 12345)
    }

    #[test]
    fn single_flow_is_fifo() {
        let mut q = make(1 << 30);
        for i in 0..10 {
            assert!(q.enqueue(qp(1, i, t(0)), t(0)));
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(t(1)).unwrap().pkt.seq, i);
        }
        assert!(q.dequeue(t(1)).is_none());
    }

    #[test]
    fn fair_share_between_two_flows() {
        let mut q = make(1 << 30);
        // Flow 1 floods 100 packets; flow 2 offers 10.
        for i in 0..100 {
            q.enqueue(qp(1, i, t(0)), t(0));
        }
        for i in 0..10 {
            q.enqueue(qp(2, i, t(0)), t(0));
        }
        // Serve 20 packets: DRR should interleave roughly 1:1 while both
        // bins are backlogged (equal packet sizes).
        let mut per_flow = [0usize; 2];
        for _ in 0..20 {
            let p = q.dequeue(t(1)).unwrap();
            per_flow[(p.pkt.flow.0 - 1) as usize] += 1;
        }
        assert!(
            per_flow[1] >= 8,
            "small flow starved: got {per_flow:?} (expected near 10/10)"
        );
    }

    #[test]
    fn capacity_drops_on_enqueue() {
        let mut q = make(3000);
        assert!(q.enqueue(qp(1, 0, t(0)), t(0)));
        assert!(q.enqueue(qp(2, 0, t(0)), t(0)));
        assert!(!q.enqueue(qp(3, 0, t(0)), t(0)));
        assert_eq!(q.stats().dropped, 1);
    }

    #[test]
    fn byte_accounting_through_codel_drops() {
        let mut q = make(1 << 30);
        // Create long sojourn so CoDel starts dropping.
        for i in 0..400 {
            q.enqueue(qp(1, i, t(0)), t(0));
        }
        let mut now = t(200);
        let mut forwarded = 0;
        while q.len_packets() > 0 {
            now += SimDuration::from_millis(2);
            if q.dequeue(now).is_some() {
                forwarded += 1;
            }
        }
        let st = q.stats();
        assert_eq!(st.dropped + forwarded as u64, 400, "conservation: {st:?}");
        assert!(st.dropped > 0, "long sojourn must trigger CoDel drops");
        assert_eq!(q.len_bytes(), 0, "byte gauge returns to zero");
    }

    #[test]
    fn different_salts_can_change_binning() {
        let a = SfqCodel::new(1 << 20, CodelParams::default(), 8, 1);
        let b = SfqCodel::new(1 << 20, CodelParams::default(), 8, 99);
        let bins_a: Vec<usize> = (0..32).map(|f| a.bin_of(f)).collect();
        let bins_b: Vec<usize> = (0..32).map(|f| b.bin_of(f)).collect();
        assert_ne!(bins_a, bins_b, "salt perturbs the hash");
        // and bins stay in range
        assert!(bins_a.iter().all(|&x| x < 8));
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut q = make(1 << 20);
        assert!(q.dequeue(t(5)).is_none());
        assert_eq!(q.len_packets(), 0);
    }
}
