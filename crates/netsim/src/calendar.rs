//! Bucketed calendar queue: the default event-scheduler backend.
//!
//! A calendar queue (R. Brown, *Calendar Queues: A Fast O(1) Priority
//! Queue Implementation for the Simulation Event Set Problem*, CACM 1988)
//! hashes each event by time into an array of buckets — "days" of a
//! circular "year" — and pops by walking days in order, so both insert
//! and pop are O(1) amortized when the bucket width matches the typical
//! inter-event spacing. Discrete-event network simulation is the ideal
//! case: most pending events (serializations, propagations, acks) sit
//! within an RTT of now, with a thin far-future tail of RTO and workload
//! timers.
//!
//! This implementation preserves the exact `(time, insertion-seq)` total
//! order of the [`crate::event::BinaryHeapScheduler`] reference — ties at
//! the same instant pop FIFO — so the two backends are interchangeable
//! without disturbing bit-for-bit determinism (property-tested in
//! `netsim/tests/proptest_scheduler.rs`).
//!
//! # Tuning knobs (all self-adjusting)
//!
//! * **Bucket width** is a power of two nanoseconds (`1 << shift`), so
//!   the time→bucket hash is a shift-and-mask, not a division. It is
//!   seeded from [`CalendarQueue::with_width_hint`] (the simulation
//!   engine passes the bottleneck serialization time) and re-estimated
//!   on every resize as three times the mean gap among the earliest
//!   pending events — head-local density, deliberately blind to the
//!   far-future timer tail (see [`estimate_shift`](self)).
//! * **Bucket count** is a power of two kept within a factor of two of
//!   the population: the array doubles when `len > 2 × buckets` and
//!   halves when `len < buckets / 4` (never below [`MIN_BUCKETS`]).
//! * **Degeneracy recovery:** pops that scan a long bucket (width too
//!   wide) or fall through a whole year to the direct-search path (width
//!   too narrow) increment a counter; `RETUNE_AFTER` such pops force a
//!   same-size rebuild with a fresh width estimate. A mis-seeded queue
//!   therefore converges instead of staying degenerate.
//!
//! Far-future timers cost nothing extra: an event beyond the current
//! year waits in its bucket and is skipped by the day scan until its
//! year comes around; if the queue goes sparse, the pop path jumps
//! straight to the global minimum instead of walking empty days.

use crate::event::{Entry, Event, Scheduler};
use crate::time::{SimDuration, SimTime};

/// Smallest bucket-array size (power of two).
pub const MIN_BUCKETS: usize = 16;

/// Default bucket width when no hint is given: 2^13 ns ≈ 8.2 µs.
const DEFAULT_SHIFT: u32 = 13;

/// Widest representable bucket: 2^42 ns ≈ 73 min. Wider buckets than any
/// plausible event horizon only degrade back to per-bucket linear scans.
const MAX_SHIFT: u32 = 42;

/// Entries scanned in one bucket before a pop counts as degenerate
/// (bucket width too coarse — everything hashed into one day).
const WIDE_SCAN: usize = 64;

/// Buckets walked in one pop before it counts as degenerate (bucket
/// width too fine — the day walk marches over empty days).
const LONG_WALK: usize = 64;

/// Degenerate pops tolerated before a same-size rebuild re-estimates the
/// bucket width.
const RETUNE_AFTER: u32 = 16;

/// Head-of-queue entries measured for a width estimate.
const WIDTH_SAMPLE: usize = 64;

/// Floor on the degeneracy-retune cooldown, in pops. After a retune
/// rebuild, degenerate pops are ignored for `max(len, this)` pops: a
/// rebuild costs O(len), so spacing retunes at least `len` pops apart
/// caps their amortized cost at O(1) per pop. Without the cooldown, a
/// same-instant tie burst — which no bucket width can spread out — makes
/// every pop in its day "degenerate" and triggers an O(len) rebuild
/// every [`RETUNE_AFTER`] pops, turning one oversized day into a
/// throughput collapse.
const RETUNE_COOLDOWN_MIN: u64 = 1024;

/// One calendar day: `(time-nanos, seq)` keys stored separately from the
/// event payloads, index-aligned. Bucket scans (the minimum search in
/// `pop`, the filter in `peek_time`, the global-minimum fallback) touch
/// only the dense 16-byte key array — an `Event` carries a full `Packet`
/// and is several cache lines of payload per entry that the scan never
/// needs — so a day's worth of keys stays in cache even at high standing
/// populations.
#[derive(Default)]
struct Bucket {
    keys: Vec<(u64, u64)>,
    payloads: Vec<Event>,
}

impl Bucket {
    #[inline]
    fn push(&mut self, at: u64, seq: u64, event: Event) {
        self.keys.push((at, seq));
        self.payloads.push(event);
    }

    /// Remove entry `i` in O(1), like `Vec::swap_remove`, keeping the key
    /// and payload arrays aligned.
    #[inline]
    fn swap_remove(&mut self, i: usize) -> Entry {
        let (at, seq) = self.keys.swap_remove(i);
        let event = self.payloads.swap_remove(i);
        Entry {
            at: SimTime::from_nanos(at),
            seq,
            event,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Bucketed calendar queue ordered by `(time, seq)`.
///
/// See the module docs for the algorithm; see [`Scheduler`] for the
/// ordering contract.
pub struct CalendarQueue {
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Start of the current day (multiple of the bucket width). No stored
    /// entry is earlier than this (inserts into the past rewind it).
    day_start: u64,
    /// Bucket index holding the current day.
    cursor: usize,
    len: usize,
    /// Consecutive-ish degenerate pops since the last retune.
    degenerate_pops: u32,
    /// Degenerate pops are ignored until `stat_pops` passes this mark
    /// (see [`RETUNE_COOLDOWN_MIN`]).
    cooldown_until: u64,
    stat_pops: u64,
    stat_scanned: u64,
    stat_walked: u64,
    stat_global_min: u64,
    stat_rebuilds: u64,
}

/// `NETSIM_CAL_DEBUG=1` prints per-queue scan/retune counters on drop —
/// the diagnostic surface that found the tie-burst retune thrash.
fn debug_enabled() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| std::env::var_os("NETSIM_CAL_DEBUG").is_some())
}

impl Drop for CalendarQueue {
    fn drop(&mut self) {
        if debug_enabled() && self.stat_pops > 0 {
            eprintln!(
                "[cal] pops={} scanned/pop={:.2} walked/pop={:.2} global_min={} rebuilds={} shift={} buckets={}",
                self.stat_pops,
                self.stat_scanned as f64 / self.stat_pops as f64,
                self.stat_walked as f64 / self.stat_pops as f64,
                self.stat_global_min,
                self.stat_rebuilds,
                self.shift,
                self.buckets.len(),
            );
        }
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty calendar queue with the default bucket width.
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    /// A queue whose initial bucket width approximates `expected_gap`
    /// (the typical spacing between pending events — the simulation
    /// engine passes the bottleneck link's per-packet serialization
    /// time). The width self-tunes afterwards; the hint only avoids
    /// early rebuild churn.
    pub fn with_width_hint(expected_gap: SimDuration) -> Self {
        Self::with_shift(shift_for_width(expected_gap.as_nanos().saturating_mul(3)))
    }

    fn with_shift(shift: u32) -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS - 1,
            shift,
            day_start: 0,
            cursor: 0,
            len: 0,
            degenerate_pops: 0,
            cooldown_until: 0,
            stat_pops: 0,
            stat_scanned: 0,
            stat_walked: 0,
            stat_global_min: 0,
            stat_rebuilds: 0,
        }
    }

    /// Current bucket width (test/diagnostic surface).
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_nanos(1u64 << self.shift)
    }

    /// Current bucket count (test/diagnostic surface).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, nanos: u64) -> usize {
        ((nanos >> self.shift) as usize) & self.mask
    }

    #[inline]
    fn day_of(&self, nanos: u64) -> u64 {
        nanos & !((1u64 << self.shift) - 1)
    }

    /// Point the day walk at the day containing `nanos`.
    fn seek_to(&mut self, nanos: u64) {
        self.day_start = self.day_of(nanos);
        self.cursor = self.bucket_of(nanos);
    }

    /// Rebuild with `nbuckets` buckets, re-estimating the bucket width
    /// from the live population.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        let mut keys: Vec<(u64, u64)> = Vec::with_capacity(self.len);
        let mut payloads: Vec<Event> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            keys.append(&mut b.keys);
            payloads.append(&mut b.payloads);
        }
        if let Some(shift) = estimate_shift(&keys) {
            self.shift = shift;
        }
        if nbuckets != self.buckets.len() {
            self.buckets = (0..nbuckets).map(|_| Bucket::default()).collect();
            self.mask = nbuckets - 1;
        }
        match keys.iter().map(|&(at, _)| at).min() {
            Some(min) => self.seek_to(min),
            None => self.seek_to(0),
        }
        for ((at, seq), event) in keys.into_iter().zip(payloads) {
            let idx = self.bucket_of(at);
            self.buckets[idx].push(at, seq, event);
        }
        self.degenerate_pops = 0;
        self.cooldown_until = self.stat_pops + (self.len as u64).max(RETUNE_COOLDOWN_MIN);
        self.stat_rebuilds += 1;
    }

    fn note_degenerate_pop(&mut self) {
        if self.stat_pops < self.cooldown_until {
            return;
        }
        self.degenerate_pops += 1;
        if self.degenerate_pops >= RETUNE_AFTER {
            self.rebuild(self.buckets.len());
        }
    }

    /// Locate the entry with the global minimum `(at, seq)`. O(n +
    /// buckets); only used when the day walk comes up dry (sparse queue
    /// or a time horizon saturating u64 nanoseconds).
    fn find_global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (bi, b) in self.buckets.iter().enumerate() {
            for (i, &(at, seq)) in b.keys.iter().enumerate() {
                if best.is_none_or(|(_, _, bat, bseq)| (at, seq) < (bat, bseq)) {
                    best = Some((bi, i, at, seq));
                }
            }
        }
        best.map(|(bi, i, _, _)| (bi, i))
    }
}

impl Scheduler for CalendarQueue {
    fn insert(&mut self, at: SimTime, seq: u64, event: Event) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
        let nanos = at.as_nanos();
        // Keep the no-entry-before-day_start invariant: inserts into the
        // past (or into an empty queue whose walk position is stale)
        // rewind the day walk to the new entry.
        if self.len == 0 || nanos < self.day_start {
            self.seek_to(nanos);
        }
        let idx = self.bucket_of(nanos);
        self.buckets[idx].push(nanos, seq, event);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        self.stat_pops += 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        let width = 1u64 << self.shift;
        for walked in 0..self.buckets.len() {
            let day_last = self.day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                // The day span saturates u64: day arithmetic can no longer
                // distinguish years, so fall through to the direct search.
                break;
            }
            let bucket = &mut self.buckets[self.cursor];
            if !bucket.is_empty() {
                // The whole current day lives in this one bucket, and no
                // entry predates the current day, so the bucket-local
                // minimum within the day is the global minimum. Only the
                // key array is scanned; payloads stay untouched.
                let mut best: Option<(usize, u64, u64)> = None;
                for (i, &(at, seq)) in bucket.keys.iter().enumerate() {
                    if at <= day_last && best.is_none_or(|(_, bat, bseq)| (at, seq) < (bat, bseq)) {
                        best = Some((i, at, seq));
                    }
                }
                if let Some((i, _, _)) = best {
                    let scanned = bucket.len();
                    self.stat_scanned += scanned as u64;
                    self.stat_walked += walked as u64;
                    let entry = bucket.swap_remove(i);
                    self.len -= 1;
                    // Either degeneracy triggers a retune: a long scan of
                    // one bucket (width too coarse) or a long march over
                    // empty days (width too fine).
                    if scanned > WIDE_SCAN || walked > LONG_WALK {
                        self.note_degenerate_pop();
                    }
                    return Some(entry);
                }
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.day_start = self.day_start.saturating_add(width);
        }
        // A full year of days held nothing due: the queue is sparse
        // relative to its width. Jump straight to the global minimum.
        self.stat_global_min += 1;
        let (bi, i) = self.find_global_min().expect("len > 0 entries exist");
        let entry = self.buckets[bi].swap_remove(i);
        self.len -= 1;
        self.seek_to(entry.at.as_nanos());
        self.note_degenerate_pop();
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let width = 1u64 << self.shift;
        let mut day_start = self.day_start;
        let mut cursor = self.cursor;
        for _ in 0..self.buckets.len() {
            let day_last = day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                break;
            }
            if let Some(at) = self.buckets[cursor]
                .keys
                .iter()
                .map(|&(at, _)| at)
                .filter(|&at| at <= day_last)
                .min()
            {
                return Some(SimTime::from_nanos(at));
            }
            cursor = (cursor + 1) & self.mask;
            day_start = day_start.saturating_add(width);
        }
        let (bi, i) = self.find_global_min()?;
        Some(SimTime::from_nanos(self.buckets[bi].keys[i].0))
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Shift for the smallest power-of-two width ≥ `width_nanos`, clamped.
fn shift_for_width(width_nanos: u64) -> u32 {
    let w = width_nanos.clamp(1, 1 << MAX_SHIFT);
    w.next_power_of_two().trailing_zeros().min(MAX_SHIFT)
}

/// Width heuristic: three times the mean gap across the *earlier half*
/// of the pending population (never fewer than [`WIDTH_SAMPLE`]
/// entries). Pop cost is governed by event density near the head of the
/// queue — the far-future timer tail must not influence the estimate (a
/// global mean would let one 60 s RTO timer widen the buckets that the
/// microsecond-scale packet events live in), which rules out a full-span
/// mean; but a head sample must also be deep enough that a same-instant
/// burst (64 senders released by one ack batch) cannot collapse the
/// estimate to nanoseconds and leave every pop marching over empty days.
/// Half the population is both: burst-proof at scale, tail-blind because
/// timers sort last. The head is found with an O(n) partial selection,
/// not a full sort. Returns `None` when the whole sampled head is a
/// single instant (ties pop FIFO from one bucket regardless of width, so
/// any width serves).
fn estimate_shift(keys: &[(u64, u64)]) -> Option<u32> {
    let n = keys.len();
    if n < 2 {
        return None;
    }
    let mut times: Vec<u64> = keys.iter().map(|&(at, _)| at).collect();
    let k = (n / 2).clamp(WIDTH_SAMPLE.min(n - 1), n - 1);
    times.select_nth_unstable(k);
    let head = &times[..=k];
    let min = *head.iter().min().expect("head is nonempty");
    let kth = head[k];
    if kth > min {
        let mean_gap = (kth - min) / k as u64;
        return Some(shift_for_width(mean_gap.saturating_mul(3).max(1)));
    }
    // The whole sampled head is one instant (a tie burst — e.g. a window
    // blast's RTO deadlines). Widen the sample to the 90th percentile so
    // the burst cannot zero the estimate; only give up when even that
    // span is a single instant.
    let k90 = (9 * n / 10).clamp(k, n - 1);
    if k90 == k {
        return None;
    }
    times.select_nth_unstable(k90);
    let p90 = times[k90];
    if p90 == min {
        return None;
    }
    let mean_gap = (p90 - min) / k90 as u64;
    Some(shift_for_width(mean_gap.saturating_mul(3).max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn wake(flow: u32) -> Event {
        Event::SenderWake { flow: FlowId(flow) }
    }

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    /// Drain the queue, asserting (time, seq) never goes backwards.
    fn drain_sorted(q: &mut CalendarQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.as_nanos(), e.seq));
        }
        assert!(out.windows(2).all(|w| w[0] < w[1]), "pop order broke");
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        // Deterministic pseudo-random times with duplicates.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut expect = Vec::new();
        for seq in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % 50_000_000; // 50 ms horizon
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn same_instant_pops_fifo() {
        let mut q = CalendarQueue::new();
        for seq in 0..100 {
            q.insert(t(1_000_000), seq, wake(seq as u32));
        }
        for seq in 0..100 {
            let e = q.pop().unwrap();
            assert_eq!(e.seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn grows_and_shrinks_with_population() {
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.insert(t(seq * 1_000), seq, wake(0));
        }
        assert!(q.num_buckets() >= 4096, "array grew: {}", q.num_buckets());
        for _ in 0..9_990 {
            q.pop().unwrap();
        }
        assert!(
            q.num_buckets() <= 64,
            "array shrank back: {}",
            q.num_buckets()
        );
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn far_future_timers_coexist_with_dense_near_events() {
        let mut q = CalendarQueue::new();
        let mut seq = 0;
        let mut expect = Vec::new();
        // Dense near events every ~300 µs, far RTO-like timers at 1-60 s.
        for i in 0..500u64 {
            let at = i * 300_000;
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
            seq += 1;
        }
        for i in 0..20u64 {
            let at = 1_000_000_000 + i * 3_000_000_000;
            q.insert(t(at), seq, wake(1));
            expect.push((at, seq));
            seq += 1;
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn insert_earlier_than_current_day_rewinds() {
        let mut q = CalendarQueue::new();
        q.insert(t(10_000_000), 0, wake(0));
        assert_eq!(q.pop().unwrap().seq, 0);
        // The walk now sits at ~10 ms; push something at 1 ms.
        q.insert(t(1_000_000), 1, wake(1));
        q.insert(t(20_000_000), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
    }

    #[test]
    fn saturated_horizon_still_pops_in_order() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::MAX, 0, wake(0));
        q.insert(t(5), 1, wake(1));
        q.insert(SimTime::from_nanos(u64::MAX - 1), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn mis_seeded_width_recovers() {
        // Seed with an absurdly wide hint; dense sub-microsecond traffic
        // must trigger retuning rather than degrade to linear scans.
        let mut q = CalendarQueue::with_width_hint(SimDuration::from_secs(3600));
        let wide = q.bucket_width();
        for seq in 0..4096u64 {
            q.insert(t(seq * 500), seq, wake(0));
        }
        for seq in 0..4096u64 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(
            q.bucket_width() < wide,
            "width re-estimated: {:?} -> {:?}",
            wide,
            q.bucket_width()
        );
    }

    #[test]
    fn peek_never_disturbs_order() {
        let mut q = CalendarQueue::new();
        let times = [7u64, 3, 3, 900_000_000_000, 12, 5];
        for (seq, &at) in times.iter().enumerate() {
            q.insert(t(at), seq as u64, wake(0));
        }
        while let Some(peeked) = q.peek_time() {
            let popped = q.pop().unwrap();
            assert_eq!(peeked, popped.at);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn width_hint_seeds_bucket_width() {
        let q = CalendarQueue::with_width_hint(SimDuration::from_micros(300));
        // 3 × 300 µs rounded up to a power of two = 2^20 ns ≈ 1.05 ms.
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1 << 20));
        let q = CalendarQueue::with_width_hint(SimDuration::ZERO);
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1));
    }
}
