//! Bucketed calendar queue: the default event-scheduler backend.
//!
//! A calendar queue (R. Brown, *Calendar Queues: A Fast O(1) Priority
//! Queue Implementation for the Simulation Event Set Problem*, CACM 1988)
//! hashes each event by time into an array of buckets — "days" of a
//! circular "year" — and pops by walking days in order, so both insert
//! and pop are O(1) amortized when the bucket width matches the typical
//! inter-event spacing. Discrete-event network simulation is the ideal
//! case: most pending events (serializations, propagations, acks) sit
//! within an RTT of now, with a thin far-future tail of RTO and workload
//! timers.
//!
//! This implementation preserves the exact `(time, insertion-seq)` total
//! order of the [`crate::event::BinaryHeapScheduler`] reference — ties at
//! the same instant pop FIFO — so the two backends are interchangeable
//! without disturbing bit-for-bit determinism (property-tested in
//! `netsim/tests/proptest_scheduler.rs`).
//!
//! # Tuning knobs (all self-adjusting)
//!
//! * **Bucket width** is a power of two nanoseconds (`1 << shift`), so
//!   the time→bucket hash is a shift-and-mask, not a division. It is
//!   seeded from [`CalendarQueue::with_width_hint`] (the simulation
//!   engine passes the bottleneck serialization time) and re-estimated
//!   on every resize as three times the mean gap among the earliest
//!   pending events — head-local density, deliberately blind to the
//!   far-future timer tail (see [`estimate_shift`](self)).
//! * **Bucket count** is a power of two kept within a factor of two of
//!   the population: the array doubles when `len > 2 × buckets` and
//!   halves when `len < buckets / 4` (never below [`MIN_BUCKETS`]).
//! * **Degeneracy recovery:** pops that scan a long bucket (width too
//!   wide) or fall through a whole year to the direct-search path (width
//!   too narrow) increment a counter; [`RETUNE_AFTER`] such pops force a
//!   same-size rebuild with a fresh width estimate. A mis-seeded queue
//!   therefore converges instead of staying degenerate.
//!
//! Far-future timers cost nothing extra: an event beyond the current
//! year waits in its bucket and is skipped by the day scan until its
//! year comes around; if the queue goes sparse, the pop path jumps
//! straight to the global minimum instead of walking empty days.

use crate::event::{Entry, Event, Scheduler};
use crate::time::{SimDuration, SimTime};

/// Smallest bucket-array size (power of two).
pub const MIN_BUCKETS: usize = 16;

/// Default bucket width when no hint is given: 2^13 ns ≈ 8.2 µs.
const DEFAULT_SHIFT: u32 = 13;

/// Widest representable bucket: 2^42 ns ≈ 73 min. Wider buckets than any
/// plausible event horizon only degrade back to per-bucket linear scans.
const MAX_SHIFT: u32 = 42;

/// Entries scanned in one bucket before a pop counts as degenerate
/// (bucket width too coarse — everything hashed into one day).
const WIDE_SCAN: usize = 64;

/// Buckets walked in one pop before it counts as degenerate (bucket
/// width too fine — the day walk marches over empty days).
const LONG_WALK: usize = 64;

/// Degenerate pops tolerated before a same-size rebuild re-estimates the
/// bucket width.
const RETUNE_AFTER: u32 = 16;

/// Head-of-queue entries measured for a width estimate.
const WIDTH_SAMPLE: usize = 64;

/// Bucketed calendar queue ordered by `(time, seq)`.
///
/// See the module docs for the algorithm; see [`Scheduler`] for the
/// ordering contract.
pub struct CalendarQueue {
    buckets: Vec<Vec<Entry>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Start of the current day (multiple of the bucket width). No stored
    /// entry is earlier than this (inserts into the past rewind it).
    day_start: u64,
    /// Bucket index holding the current day.
    cursor: usize,
    len: usize,
    /// Consecutive-ish degenerate pops since the last retune.
    degenerate_pops: u32,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    /// A queue whose initial bucket width approximates `expected_gap`
    /// (the typical spacing between pending events — the simulation
    /// engine passes the bottleneck link's per-packet serialization
    /// time). The width self-tunes afterwards; the hint only avoids
    /// early rebuild churn.
    pub fn with_width_hint(expected_gap: SimDuration) -> Self {
        Self::with_shift(shift_for_width(expected_gap.as_nanos().saturating_mul(3)))
    }

    fn with_shift(shift: u32) -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            shift,
            day_start: 0,
            cursor: 0,
            len: 0,
            degenerate_pops: 0,
        }
    }

    /// Current bucket width (test/diagnostic surface).
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_nanos(1u64 << self.shift)
    }

    /// Current bucket count (test/diagnostic surface).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, nanos: u64) -> usize {
        ((nanos >> self.shift) as usize) & self.mask
    }

    #[inline]
    fn day_of(&self, nanos: u64) -> u64 {
        nanos & !((1u64 << self.shift) - 1)
    }

    /// Point the day walk at the day containing `nanos`.
    fn seek_to(&mut self, nanos: u64) {
        self.day_start = self.day_of(nanos);
        self.cursor = self.bucket_of(nanos);
    }

    /// Rebuild with `nbuckets` buckets, re-estimating the bucket width
    /// from the live population.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        let mut entries: Vec<Entry> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        if let Some(shift) = estimate_shift(&entries) {
            self.shift = shift;
        }
        if nbuckets != self.buckets.len() {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
            self.mask = nbuckets - 1;
        }
        match entries.iter().map(|e| e.at.as_nanos()).min() {
            Some(min) => self.seek_to(min),
            None => self.seek_to(0),
        }
        for e in entries {
            let idx = self.bucket_of(e.at.as_nanos());
            self.buckets[idx].push(e);
        }
        self.degenerate_pops = 0;
    }

    fn note_degenerate_pop(&mut self) {
        self.degenerate_pops += 1;
        if self.degenerate_pops >= RETUNE_AFTER {
            self.rebuild(self.buckets.len());
        }
    }

    /// Locate the entry with the global minimum `(at, seq)`. O(n +
    /// buckets); only used when the day walk comes up dry (sparse queue
    /// or a time horizon saturating u64 nanoseconds).
    fn find_global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (bi, b) in self.buckets.iter().enumerate() {
            for (i, e) in b.iter().enumerate() {
                let key = (e.at.as_nanos(), e.seq);
                if best.is_none_or(|(_, _, at, seq)| key < (at, seq)) {
                    best = Some((bi, i, key.0, key.1));
                }
            }
        }
        best.map(|(bi, i, _, _)| (bi, i))
    }
}

impl Scheduler for CalendarQueue {
    fn insert(&mut self, at: SimTime, seq: u64, event: Event) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
        let nanos = at.as_nanos();
        // Keep the no-entry-before-day_start invariant: inserts into the
        // past (or into an empty queue whose walk position is stale)
        // rewind the day walk to the new entry.
        if self.len == 0 || nanos < self.day_start {
            self.seek_to(nanos);
        }
        let idx = self.bucket_of(nanos);
        self.buckets[idx].push(Entry { at, seq, event });
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        let width = 1u64 << self.shift;
        for walked in 0..self.buckets.len() {
            let day_last = self.day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                // The day span saturates u64: day arithmetic can no longer
                // distinguish years, so fall through to the direct search.
                break;
            }
            let bucket = &mut self.buckets[self.cursor];
            if !bucket.is_empty() {
                // The whole current day lives in this one bucket, and no
                // entry predates the current day, so the bucket-local
                // minimum within the day is the global minimum.
                let mut best: Option<(usize, u64, u64)> = None;
                for (i, e) in bucket.iter().enumerate() {
                    let at = e.at.as_nanos();
                    if at <= day_last && best.is_none_or(|(_, bat, bseq)| (at, e.seq) < (bat, bseq))
                    {
                        best = Some((i, at, e.seq));
                    }
                }
                if let Some((i, _, _)) = best {
                    let scanned = bucket.len();
                    let entry = bucket.swap_remove(i);
                    self.len -= 1;
                    // Either degeneracy triggers a retune: a long scan of
                    // one bucket (width too coarse) or a long march over
                    // empty days (width too fine).
                    if scanned > WIDE_SCAN || walked > LONG_WALK {
                        self.note_degenerate_pop();
                    }
                    return Some(entry);
                }
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.day_start = self.day_start.saturating_add(width);
        }
        // A full year of days held nothing due: the queue is sparse
        // relative to its width. Jump straight to the global minimum.
        let (bi, i) = self.find_global_min().expect("len > 0 entries exist");
        let entry = self.buckets[bi].swap_remove(i);
        self.len -= 1;
        self.seek_to(entry.at.as_nanos());
        self.note_degenerate_pop();
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let width = 1u64 << self.shift;
        let mut day_start = self.day_start;
        let mut cursor = self.cursor;
        for _ in 0..self.buckets.len() {
            let day_last = day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                break;
            }
            if let Some(at) = self.buckets[cursor]
                .iter()
                .map(|e| e.at.as_nanos())
                .filter(|&at| at <= day_last)
                .min()
            {
                return Some(SimTime::from_nanos(at));
            }
            cursor = (cursor + 1) & self.mask;
            day_start = day_start.saturating_add(width);
        }
        let (bi, i) = self.find_global_min()?;
        Some(self.buckets[bi][i].at)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Shift for the smallest power-of-two width ≥ `width_nanos`, clamped.
fn shift_for_width(width_nanos: u64) -> u32 {
    let w = width_nanos.clamp(1, 1 << MAX_SHIFT);
    w.next_power_of_two().trailing_zeros().min(MAX_SHIFT)
}

/// Width heuristic: three times the mean gap among the [`WIDTH_SAMPLE`]
/// *earliest* pending events. Pop cost is governed by event density at
/// the head of the queue — the far-future timer tail must not influence
/// the estimate (a global mean would let one 60 s RTO timer widen the
/// buckets that the microsecond-scale packet events live in). The head
/// is found with an O(n) partial selection, not a full sort. Returns
/// `None` when the head is a single instant (ties pop FIFO from one
/// bucket regardless of width, so any width serves).
fn estimate_shift(entries: &[Entry]) -> Option<u32> {
    let n = entries.len();
    if n < 2 {
        return None;
    }
    let mut times: Vec<u64> = entries.iter().map(|e| e.at.as_nanos()).collect();
    let k = WIDTH_SAMPLE.min(n - 1);
    times.select_nth_unstable(k);
    let head = &times[..=k];
    let min = *head.iter().min().expect("head is nonempty");
    let kth = head[k];
    if kth == min {
        return None;
    }
    let mean_gap = (kth - min) / k as u64;
    Some(shift_for_width(mean_gap.saturating_mul(3).max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn wake(flow: u32) -> Event {
        Event::SenderWake { flow: FlowId(flow) }
    }

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    /// Drain the queue, asserting (time, seq) never goes backwards.
    fn drain_sorted(q: &mut CalendarQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.as_nanos(), e.seq));
        }
        assert!(out.windows(2).all(|w| w[0] < w[1]), "pop order broke");
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        // Deterministic pseudo-random times with duplicates.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut expect = Vec::new();
        for seq in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % 50_000_000; // 50 ms horizon
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn same_instant_pops_fifo() {
        let mut q = CalendarQueue::new();
        for seq in 0..100 {
            q.insert(t(1_000_000), seq, wake(seq as u32));
        }
        for seq in 0..100 {
            let e = q.pop().unwrap();
            assert_eq!(e.seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn grows_and_shrinks_with_population() {
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.insert(t(seq * 1_000), seq, wake(0));
        }
        assert!(q.num_buckets() >= 4096, "array grew: {}", q.num_buckets());
        for _ in 0..9_990 {
            q.pop().unwrap();
        }
        assert!(
            q.num_buckets() <= 64,
            "array shrank back: {}",
            q.num_buckets()
        );
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn far_future_timers_coexist_with_dense_near_events() {
        let mut q = CalendarQueue::new();
        let mut seq = 0;
        let mut expect = Vec::new();
        // Dense near events every ~300 µs, far RTO-like timers at 1-60 s.
        for i in 0..500u64 {
            let at = i * 300_000;
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
            seq += 1;
        }
        for i in 0..20u64 {
            let at = 1_000_000_000 + i * 3_000_000_000;
            q.insert(t(at), seq, wake(1));
            expect.push((at, seq));
            seq += 1;
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn insert_earlier_than_current_day_rewinds() {
        let mut q = CalendarQueue::new();
        q.insert(t(10_000_000), 0, wake(0));
        assert_eq!(q.pop().unwrap().seq, 0);
        // The walk now sits at ~10 ms; push something at 1 ms.
        q.insert(t(1_000_000), 1, wake(1));
        q.insert(t(20_000_000), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
    }

    #[test]
    fn saturated_horizon_still_pops_in_order() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::MAX, 0, wake(0));
        q.insert(t(5), 1, wake(1));
        q.insert(SimTime::from_nanos(u64::MAX - 1), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn mis_seeded_width_recovers() {
        // Seed with an absurdly wide hint; dense sub-microsecond traffic
        // must trigger retuning rather than degrade to linear scans.
        let mut q = CalendarQueue::with_width_hint(SimDuration::from_secs(3600));
        let wide = q.bucket_width();
        for seq in 0..4096u64 {
            q.insert(t(seq * 500), seq, wake(0));
        }
        for seq in 0..4096u64 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(
            q.bucket_width() < wide,
            "width re-estimated: {:?} -> {:?}",
            wide,
            q.bucket_width()
        );
    }

    #[test]
    fn peek_never_disturbs_order() {
        let mut q = CalendarQueue::new();
        let times = [7u64, 3, 3, 900_000_000_000, 12, 5];
        for (seq, &at) in times.iter().enumerate() {
            q.insert(t(at), seq as u64, wake(0));
        }
        while let Some(peeked) = q.peek_time() {
            let popped = q.pop().unwrap();
            assert_eq!(peeked, popped.at);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn width_hint_seeds_bucket_width() {
        let q = CalendarQueue::with_width_hint(SimDuration::from_micros(300));
        // 3 × 300 µs rounded up to a power of two = 2^20 ns ≈ 1.05 ms.
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1 << 20));
        let q = CalendarQueue::with_width_hint(SimDuration::ZERO);
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1));
    }
}
