//! Bucketed calendar queue: the default event-scheduler backend.
//!
//! A calendar queue (R. Brown, *Calendar Queues: A Fast O(1) Priority
//! Queue Implementation for the Simulation Event Set Problem*, CACM 1988)
//! hashes each event by time into an array of buckets — "days" of a
//! circular "year" — and pops by walking days in order, so both insert
//! and pop are O(1) amortized when the bucket width matches the typical
//! inter-event spacing. Discrete-event network simulation is the ideal
//! case: most pending events (serializations, propagations, acks) sit
//! within an RTT of now, with a thin far-future tail of RTO and workload
//! timers.
//!
//! This implementation preserves the exact `(time, insertion-seq)` total
//! order of the [`crate::event::BinaryHeapScheduler`] reference — ties at
//! the same instant pop FIFO — so the two backends are interchangeable
//! without disturbing bit-for-bit determinism (property-tested in
//! `netsim/tests/proptest_scheduler.rs`).
//!
//! # Tuning knobs (all self-adjusting)
//!
//! * **Bucket width** is a power of two nanoseconds (`1 << shift`), so
//!   the time→bucket hash is a shift-and-mask, not a division. It is
//!   seeded from [`CalendarQueue::with_width_hint`] (the simulation
//!   engine passes the bottleneck serialization time) and re-estimated
//!   on every resize as three times the mean gap among the earliest
//!   pending events — head-local density, deliberately blind to the
//!   far-future timer tail (see [`estimate_shift`](self)).
//! * **Bucket count** is a power of two kept within a factor of two of
//!   the population: the array doubles when `len > 2 × buckets` and
//!   halves when `len < buckets / 4` (never below [`MIN_BUCKETS`]).
//! * **Degeneracy recovery:** pops that scan a long bucket (width too
//!   wide) or fall through a whole year to the direct-search path (width
//!   too narrow) increment a counter; `RETUNE_AFTER` such pops force a
//!   same-size rebuild with a fresh width estimate. A mis-seeded queue
//!   therefore converges instead of staying degenerate.
//!
//! Far-future timers cost nothing extra: an event beyond the current
//! year waits in its bucket and is skipped by the day scan until its
//! year comes around; if the queue goes sparse, the pop path jumps
//! straight to the global minimum instead of walking empty days.
//!
//! # The today buffer (oversized tie runs)
//!
//! No bucket width can spread a same-instant tie burst — a window blast
//! released in one ack batch puts thousands of entries at a single
//! instant, and every pop would rescan them all, O(k²) per burst. PR 5
//! capped the *retune thrash* this caused with a cooldown; the scan cost
//! itself remained, and it is why the calendar trailed the heap in the
//! dense standing-population regime. The fix is a **sort-and-drain
//! buffer**: when a pop finds more than [`TODAY_DRAIN`] entries due at
//! the minimum instant of the current day, the whole run is extracted
//! from its bucket, sorted once by seq (O(k log k)), and drained
//! front-to-front in O(1) pops. While the buffer is active its front is
//! the global minimum, so pops bypass the bucket walk entirely. Inserts
//! at exactly the buffered instant append at their seq position (the
//! engine's monotonic seq makes that the back, O(1)); inserts at later
//! times take the ordinary bucket path untouched; inserts before the
//! buffered instant return the remainder to its bucket first and rewind
//! as usual. Only same-instant runs are buffered — a day that is merely
//! *wide* (many distinct instants) still goes through the scan path and
//! its degeneracy accounting, so a mis-tuned width retunes exactly as
//! before.
//!
//! The buffer also powers [`Scheduler::pop_at`]: after any pop, the
//! queue knows whether another entry shares the popped instant (buffer
//! front, or a tie flag maintained by the bucket scan), so the engine
//! can drain same-instant batches without paying a full `peek` per
//! event.

use crate::event::{Entry, Event, Scheduler};
use crate::time::{SimDuration, SimTime};

/// Smallest bucket-array size (power of two).
pub const MIN_BUCKETS: usize = 16;

/// Default bucket width when no hint is given: 2^13 ns ≈ 8.2 µs.
const DEFAULT_SHIFT: u32 = 13;

/// Widest representable bucket: 2^42 ns ≈ 73 min. Wider buckets than any
/// plausible event horizon only degrade back to per-bucket linear scans.
const MAX_SHIFT: u32 = 42;

/// Entries scanned in one bucket before a pop counts as degenerate
/// (bucket width too coarse — everything hashed into one day).
const WIDE_SCAN: usize = 64;

/// Buckets walked in one pop before it counts as degenerate (bucket
/// width too fine — the day walk marches over empty days).
const LONG_WALK: usize = 64;

/// Degenerate pops tolerated before a same-size rebuild re-estimates the
/// bucket width.
const RETUNE_AFTER: u32 = 16;

/// Head-of-queue entries measured for a width estimate.
const WIDTH_SAMPLE: usize = 64;

/// Floor on the degeneracy-retune cooldown, in pops. After a retune
/// rebuild, degenerate pops are ignored for `max(len, this)` pops: a
/// rebuild costs O(len), so spacing retunes at least `len` pops apart
/// caps their amortized cost at O(1) per pop. Without the cooldown, a
/// same-instant tie burst — which no bucket width can spread out — makes
/// every pop in its day "degenerate" and triggers an O(len) rebuild
/// every [`RETUNE_AFTER`] pops, turning one oversized day into a
/// throughput collapse.
const RETUNE_COOLDOWN_MIN: u64 = 1024;

/// Same-instant entries found by one pop before it stops rescanning and
/// instead extracts the whole run into the sorted today buffer (see the
/// module docs). At or below this, per-pop scans of the run are cheaper
/// than a sort; above it, the O(k log k) sort amortizes to less than the
/// O(k) rescan every subsequent pop of the run would pay.
pub const TODAY_DRAIN: usize = 64;

/// One calendar day: `(time-nanos, seq)` keys stored separately from the
/// event payloads, index-aligned. Bucket scans (the minimum search in
/// `pop`, the filter in `peek_time`, the global-minimum fallback) touch
/// only the dense 16-byte key array — an `Event` carries a full `Packet`
/// and is several cache lines of payload per entry that the scan never
/// needs — so a day's worth of keys stays in cache even at high standing
/// populations.
#[derive(Default)]
struct Bucket {
    keys: Vec<(u64, u64)>,
    payloads: Vec<Event>,
}

impl Bucket {
    #[inline]
    fn push(&mut self, at: u64, seq: u64, event: Event) {
        self.keys.push((at, seq));
        self.payloads.push(event);
    }

    /// Remove entry `i` in O(1), like `Vec::swap_remove`, keeping the key
    /// and payload arrays aligned.
    #[inline]
    fn swap_remove(&mut self, i: usize) -> Entry {
        let (at, seq) = self.keys.swap_remove(i);
        let event = self.payloads.swap_remove(i);
        Entry {
            at: SimTime::from_nanos(at),
            seq,
            event,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Bucketed calendar queue ordered by `(time, seq)`.
///
/// See the module docs for the algorithm; see [`Scheduler`] for the
/// ordering contract.
pub struct CalendarQueue {
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Start of the current day (multiple of the bucket width). No stored
    /// entry is earlier than this (inserts into the past rewind it).
    day_start: u64,
    /// Bucket index holding the current day.
    cursor: usize,
    len: usize,
    /// Consecutive-ish degenerate pops since the last retune.
    degenerate_pops: u32,
    /// Degenerate pops are ignored until `stat_pops` passes this mark
    /// (see [`RETUNE_COOLDOWN_MIN`]).
    cooldown_until: u64,
    /// Sort-and-drain buffer for an oversized same-instant run (see the
    /// module docs): `(seq, event)` entries all due at `today_at`,
    /// sorted ascending by seq, with `today_cursor` marking the drain
    /// front. Entries here still count in `len`. Empty (`cursor ==
    /// len`) means the buffer is inactive.
    today: Vec<(u64, Event)>,
    /// The single instant (nanos) every buffered entry fires at.
    today_at: u64,
    /// Drain front of `today`; entries before it are already popped.
    today_cursor: usize,
    /// Set by a bucket-scan pop that saw at least one more entry due at
    /// the instant it returned — the hint that lets [`Scheduler::pop_at`]
    /// answer with one bucket rescan instead of a full peek. Purely an
    /// optimization gate: the rescan re-validates against the actual
    /// bucket contents, so a stale flag can waste a scan but never
    /// misorder a pop.
    tie_pending: bool,
    /// Collection scratch reused across [`rebuild`](Self::rebuild)s so a
    /// retune allocates nothing once grown to the standing population —
    /// retunes are frequent enough in tie-heavy dense runs that fresh
    /// per-rebuild Vecs dominated the engine's allocation profile.
    scratch_keys: Vec<(u64, u64)>,
    /// Payload half of the rebuild scratch (parallel to `scratch_keys`).
    scratch_payloads: Vec<Event>,
    stat_pops: u64,
    stat_scanned: u64,
    stat_walked: u64,
    stat_global_min: u64,
    stat_rebuilds: u64,
    stat_drains: u64,
}

/// `NETSIM_CAL_DEBUG=1` prints per-queue scan/retune counters on drop —
/// the diagnostic surface that found the tie-burst retune thrash.
fn debug_enabled() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| std::env::var_os("NETSIM_CAL_DEBUG").is_some())
}

impl Drop for CalendarQueue {
    fn drop(&mut self) {
        if debug_enabled() && self.stat_pops > 0 {
            eprintln!(
                "[cal] pops={} scanned/pop={:.2} walked/pop={:.2} global_min={} rebuilds={} drains={} shift={} buckets={}",
                self.stat_pops,
                self.stat_scanned as f64 / self.stat_pops as f64,
                self.stat_walked as f64 / self.stat_pops as f64,
                self.stat_global_min,
                self.stat_rebuilds,
                self.stat_drains,
                self.shift,
                self.buckets.len(),
            );
        }
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty calendar queue with the default bucket width.
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    /// A queue whose initial bucket width approximates `expected_gap`
    /// (the typical spacing between pending events — the simulation
    /// engine passes the bottleneck link's per-packet serialization
    /// time). The width self-tunes afterwards; the hint only avoids
    /// early rebuild churn.
    pub fn with_width_hint(expected_gap: SimDuration) -> Self {
        Self::with_shift(shift_for_width(expected_gap.as_nanos().saturating_mul(3)))
    }

    fn with_shift(shift: u32) -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS - 1,
            shift,
            day_start: 0,
            cursor: 0,
            len: 0,
            degenerate_pops: 0,
            cooldown_until: 0,
            today: Vec::new(),
            today_at: 0,
            today_cursor: 0,
            tie_pending: false,
            scratch_keys: Vec::new(),
            scratch_payloads: Vec::new(),
            stat_pops: 0,
            stat_scanned: 0,
            stat_walked: 0,
            stat_global_min: 0,
            stat_rebuilds: 0,
            stat_drains: 0,
        }
    }

    /// Current bucket width (test/diagnostic surface).
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_nanos(1u64 << self.shift)
    }

    /// Current bucket count (test/diagnostic surface).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, nanos: u64) -> usize {
        ((nanos >> self.shift) as usize) & self.mask
    }

    #[inline]
    fn day_of(&self, nanos: u64) -> u64 {
        nanos & !((1u64 << self.shift) - 1)
    }

    /// Point the day walk at the day containing `nanos`.
    fn seek_to(&mut self, nanos: u64) {
        self.day_start = self.day_of(nanos);
        self.cursor = self.bucket_of(nanos);
    }

    /// Rebuild with `nbuckets` buckets, re-estimating the bucket width
    /// from the live population.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        // Collect through the persistent scratch: after the first rebuild
        // at a given population, retunes allocate nothing.
        let mut keys = std::mem::take(&mut self.scratch_keys);
        let mut payloads = std::mem::take(&mut self.scratch_payloads);
        keys.clear();
        payloads.clear();
        keys.reserve(self.len);
        payloads.reserve(self.len);
        // An active today buffer rejoins the population (its already-
        // drained prefix is dropped with the clear below).
        let today_at = self.today_at;
        for (seq, event) in self.today.drain(self.today_cursor..) {
            keys.push((today_at, seq));
            payloads.push(event);
        }
        self.today.clear();
        self.today_cursor = 0;
        self.tie_pending = false;
        for b in &mut self.buckets {
            keys.append(&mut b.keys);
            payloads.append(&mut b.payloads);
        }
        if let Some(shift) = estimate_shift(&keys) {
            self.shift = shift;
        }
        if nbuckets != self.buckets.len() {
            // Resize in place: surviving (and emptied-by-append) buckets
            // keep their key/payload capacity, so halve→double ping-pongs
            // around a population threshold stop churning the heap.
            self.buckets.resize_with(nbuckets, Bucket::default);
            self.mask = nbuckets - 1;
        }
        match keys.iter().map(|&(at, _)| at).min() {
            Some(min) => self.seek_to(min),
            None => self.seek_to(0),
        }
        for ((at, seq), event) in keys.drain(..).zip(payloads.drain(..)) {
            let idx = self.bucket_of(at);
            self.buckets[idx].push(at, seq, event);
        }
        self.scratch_keys = keys;
        self.scratch_payloads = payloads;
        self.degenerate_pops = 0;
        self.cooldown_until = self.stat_pops + (self.len as u64).max(RETUNE_COOLDOWN_MIN);
        self.stat_rebuilds += 1;
    }

    fn note_degenerate_pop(&mut self) {
        if self.stat_pops < self.cooldown_until {
            return;
        }
        self.degenerate_pops += 1;
        if self.degenerate_pops >= RETUNE_AFTER {
            self.rebuild(self.buckets.len());
        }
    }

    /// Extract every entry due at exactly `at` from the cursor bucket
    /// into the today buffer and sort the run once by seq. Callers pop
    /// the front via [`Self::pop_from_today`].
    fn start_today_drain(&mut self, at: u64) {
        debug_assert!(self.today.is_empty());
        let bucket = &mut self.buckets[self.cursor];
        let mut i = 0;
        while i < bucket.keys.len() {
            if bucket.keys[i].0 == at {
                let (_, seq) = bucket.keys.swap_remove(i);
                let event = bucket.payloads.swap_remove(i);
                self.today.push((seq, event));
            } else {
                i += 1;
            }
        }
        self.today.sort_unstable_by_key(|&(seq, _)| seq);
        self.today_at = at;
        self.today_cursor = 0;
        self.tie_pending = false;
    }

    /// Pop the front of the active today buffer. The buffer front is the
    /// global minimum: it fires at the minimum pending instant (nothing
    /// predates the current day, and the buffered instant was the
    /// in-day minimum when drained — inserts at it join the buffer,
    /// inserts before it flush the buffer first), and the buffer is
    /// seq-sorted.
    fn pop_from_today(&mut self) -> Entry {
        let (seq, slot) = &mut self.today[self.today_cursor];
        let seq = *seq;
        // The payload is moved out and replaced with a unit-variant
        // placeholder; the consumed slot sits behind the cursor until the
        // buffer drains or rejoins a rebuild, both of which discard it.
        let event = std::mem::replace(slot, Event::TraceSample);
        self.today_cursor += 1;
        self.len -= 1;
        if self.today_cursor == self.today.len() {
            self.today.clear();
            self.today_cursor = 0;
        }
        Entry {
            at: SimTime::from_nanos(self.today_at),
            seq,
            event,
        }
    }

    /// Return the undrained remainder of the today buffer to its bucket
    /// (used before an insert earlier than the buffered instant; the
    /// rewound walk will find the entries where the hash says they
    /// live).
    fn flush_today(&mut self) {
        let idx = self.bucket_of(self.today_at);
        while self.today.len() > self.today_cursor {
            let (seq, event) = self.today.pop().expect("buffer is nonempty");
            self.buckets[idx].push(self.today_at, seq, event);
        }
        self.today.clear();
        self.today_cursor = 0;
    }

    /// Locate the entry with the global minimum `(at, seq)`. O(n +
    /// buckets); only used when the day walk comes up dry (sparse queue
    /// or a time horizon saturating u64 nanoseconds).
    fn find_global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (bi, b) in self.buckets.iter().enumerate() {
            for (i, &(at, seq)) in b.keys.iter().enumerate() {
                if best.is_none_or(|(_, _, bat, bseq)| (at, seq) < (bat, bseq)) {
                    best = Some((bi, i, at, seq));
                }
            }
        }
        best.map(|(bi, i, _, _)| (bi, i))
    }
}

impl Scheduler for CalendarQueue {
    fn insert(&mut self, at: SimTime, seq: u64, event: Event) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
        let nanos = at.as_nanos();
        if self.today_cursor < self.today.len() {
            if nanos == self.today_at {
                // The insert fires at the buffered instant: merge it at
                // its seq position. The engine's seq is monotonic, so
                // this is an O(1) append at the back.
                let pos = self.today_cursor
                    + self.today[self.today_cursor..].partition_point(|&(s, _)| s < seq);
                self.today.insert(pos, (seq, event));
                self.len += 1;
                return;
            }
            if nanos < self.today_at {
                // Inserting before the buffered instant: the buffer is
                // no longer the global front. Return it to its bucket
                // and fall through to the ordinary path (which rewinds
                // if the insert also predates the current day).
                self.flush_today();
            }
            // nanos > today_at: later entries take the ordinary bucket
            // path; the drained run stays the global front.
        }
        // Keep the no-entry-before-day_start invariant: inserts into the
        // past (or into an empty queue whose walk position is stale)
        // rewind the day walk to the new entry.
        if self.len == 0 || nanos < self.day_start {
            self.seek_to(nanos);
        }
        let idx = self.bucket_of(nanos);
        self.buckets[idx].push(nanos, seq, event);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        self.stat_pops += 1;
        if self.today_cursor < self.today.len() {
            return Some(self.pop_from_today());
        }
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        let width = 1u64 << self.shift;
        for walked in 0..self.buckets.len() {
            let day_last = self.day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                // The day span saturates u64: day arithmetic can no longer
                // distinguish years, so fall through to the direct search.
                break;
            }
            let bucket = &self.buckets[self.cursor];
            if !bucket.is_empty() {
                // The whole current day lives in this one bucket, and no
                // entry predates the current day, so the bucket-local
                // minimum within the day is the global minimum. Only the
                // key array is scanned; payloads stay untouched.
                let mut besti = usize::MAX;
                let mut best = (u64::MAX, u64::MAX);
                let mut ties = 0usize;
                for (i, &(at, seq)) in bucket.keys.iter().enumerate() {
                    if at > day_last {
                        continue;
                    }
                    if at < best.0 {
                        best = (at, seq);
                        besti = i;
                        ties = 1;
                    } else if at == best.0 {
                        ties += 1;
                        if seq < best.1 {
                            best = (at, seq);
                            besti = i;
                        }
                    }
                }
                if besti != usize::MAX {
                    let scanned = bucket.len();
                    self.stat_scanned += scanned as u64;
                    self.stat_walked += walked as u64;
                    if ties > TODAY_DRAIN {
                        // Oversized same-instant run: no width can spread
                        // it, and per-pop rescans would make it O(k²).
                        // Sort the run once and drain it (module docs).
                        self.stat_drains += 1;
                        self.start_today_drain(best.0);
                        return Some(self.pop_from_today());
                    }
                    let entry = self.buckets[self.cursor].swap_remove(besti);
                    self.len -= 1;
                    self.tie_pending = ties >= 2;
                    // Either degeneracy triggers a retune: a long scan of
                    // one bucket (width too coarse) or a long march over
                    // empty days (width too fine).
                    if scanned > WIDE_SCAN || walked > LONG_WALK {
                        self.note_degenerate_pop();
                    }
                    return Some(entry);
                }
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.day_start = self.day_start.saturating_add(width);
        }
        // A full year of days held nothing due: the queue is sparse
        // relative to its width. Jump straight to the global minimum.
        self.stat_global_min += 1;
        let (bi, i) = self.find_global_min().expect("len > 0 entries exist");
        let entry = self.buckets[bi].swap_remove(i);
        self.len -= 1;
        self.seek_to(entry.at.as_nanos());
        self.tie_pending = false;
        self.note_degenerate_pop();
        Some(entry)
    }

    fn pop_at(&mut self, at: SimTime) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        let nanos = at.as_nanos();
        if self.today_cursor < self.today.len() {
            // Buffer front is the global minimum; one instant compare.
            if self.today_at != nanos {
                return None;
            }
            self.stat_pops += 1;
            return Some(self.pop_from_today());
        }
        if !self.tie_pending {
            return None;
        }
        self.tie_pending = false;
        // The last bucket-scan pop saw another entry due at its instant.
        // Re-validate: the in-day minimum of the cursor bucket is the
        // global minimum (same invariant the pop scan rests on), so if
        // it equals `at` it is safe to return. The flag being stale can
        // only waste this rescan, never misorder.
        let width = 1u64 << self.shift;
        let day_last = self.day_start.saturating_add(width - 1);
        if day_last == u64::MAX || nanos < self.day_start || nanos > day_last {
            return None;
        }
        let bucket = &self.buckets[self.cursor];
        let mut besti = usize::MAX;
        let mut best = (u64::MAX, u64::MAX);
        let mut ties = 0usize;
        for (i, &(bat, bseq)) in bucket.keys.iter().enumerate() {
            if bat > day_last {
                continue;
            }
            if bat < best.0 {
                best = (bat, bseq);
                besti = i;
                ties = 1;
            } else if bat == best.0 {
                ties += 1;
                if bseq < best.1 {
                    best = (bat, bseq);
                    besti = i;
                }
            }
        }
        if besti == usize::MAX || best.0 != nanos {
            return None;
        }
        self.stat_pops += 1;
        self.stat_scanned += bucket.len() as u64;
        let entry = self.buckets[self.cursor].swap_remove(besti);
        self.len -= 1;
        self.tie_pending = ties >= 2;
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.today_cursor < self.today.len() {
            return Some(SimTime::from_nanos(self.today_at));
        }
        let width = 1u64 << self.shift;
        let mut day_start = self.day_start;
        let mut cursor = self.cursor;
        for _ in 0..self.buckets.len() {
            let day_last = day_start.saturating_add(width - 1);
            if day_last == u64::MAX {
                break;
            }
            if let Some(at) = self.buckets[cursor]
                .keys
                .iter()
                .map(|&(at, _)| at)
                .filter(|&at| at <= day_last)
                .min()
            {
                return Some(SimTime::from_nanos(at));
            }
            cursor = (cursor + 1) & self.mask;
            day_start = day_start.saturating_add(width);
        }
        let (bi, i) = self.find_global_min()?;
        Some(SimTime::from_nanos(self.buckets[bi].keys[i].0))
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Shift for the smallest power-of-two width ≥ `width_nanos`, clamped.
fn shift_for_width(width_nanos: u64) -> u32 {
    let w = width_nanos.clamp(1, 1 << MAX_SHIFT);
    w.next_power_of_two().trailing_zeros().min(MAX_SHIFT)
}

/// Width heuristic: three times the mean gap across the *earlier half*
/// of the pending population (never fewer than [`WIDTH_SAMPLE`]
/// entries). Pop cost is governed by event density near the head of the
/// queue — the far-future timer tail must not influence the estimate (a
/// global mean would let one 60 s RTO timer widen the buckets that the
/// microsecond-scale packet events live in), which rules out a full-span
/// mean; but a head sample must also be deep enough that a same-instant
/// burst (64 senders released by one ack batch) cannot collapse the
/// estimate to nanoseconds and leave every pop marching over empty days.
/// Half the population is both: burst-proof at scale, tail-blind because
/// timers sort last. The head is found with an O(n) partial selection,
/// not a full sort. Returns `None` when the whole sampled head is a
/// single instant (ties pop FIFO from one bucket regardless of width, so
/// any width serves).
fn estimate_shift(keys: &[(u64, u64)]) -> Option<u32> {
    let n = keys.len();
    if n < 2 {
        return None;
    }
    let mut times: Vec<u64> = keys.iter().map(|&(at, _)| at).collect();
    let k = (n / 2).clamp(WIDTH_SAMPLE.min(n - 1), n - 1);
    times.select_nth_unstable(k);
    let head = &times[..=k];
    let min = *head.iter().min().expect("head is nonempty");
    let kth = head[k];
    if kth > min {
        let mean_gap = (kth - min) / k as u64;
        return Some(shift_for_width(mean_gap.saturating_mul(3).max(1)));
    }
    // The whole sampled head is one instant (a tie burst — e.g. a window
    // blast's RTO deadlines). Widen the sample to the 90th percentile so
    // the burst cannot zero the estimate; only give up when even that
    // span is a single instant.
    let k90 = (9 * n / 10).clamp(k, n - 1);
    if k90 == k {
        return None;
    }
    times.select_nth_unstable(k90);
    let p90 = times[k90];
    if p90 == min {
        return None;
    }
    let mean_gap = (p90 - min) / k90 as u64;
    Some(shift_for_width(mean_gap.saturating_mul(3).max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn wake(flow: u32) -> Event {
        Event::SenderWake { flow: FlowId(flow) }
    }

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    /// Drain the queue, asserting (time, seq) never goes backwards.
    fn drain_sorted(q: &mut CalendarQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.as_nanos(), e.seq));
        }
        assert!(out.windows(2).all(|w| w[0] < w[1]), "pop order broke");
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        // Deterministic pseudo-random times with duplicates.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut expect = Vec::new();
        for seq in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = x % 50_000_000; // 50 ms horizon
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn same_instant_pops_fifo() {
        let mut q = CalendarQueue::new();
        for seq in 0..100 {
            q.insert(t(1_000_000), seq, wake(seq as u32));
        }
        for seq in 0..100 {
            let e = q.pop().unwrap();
            assert_eq!(e.seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn grows_and_shrinks_with_population() {
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.insert(t(seq * 1_000), seq, wake(0));
        }
        assert!(q.num_buckets() >= 4096, "array grew: {}", q.num_buckets());
        for _ in 0..9_990 {
            q.pop().unwrap();
        }
        assert!(
            q.num_buckets() <= 64,
            "array shrank back: {}",
            q.num_buckets()
        );
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn far_future_timers_coexist_with_dense_near_events() {
        let mut q = CalendarQueue::new();
        let mut seq = 0;
        let mut expect = Vec::new();
        // Dense near events every ~300 µs, far RTO-like timers at 1-60 s.
        for i in 0..500u64 {
            let at = i * 300_000;
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
            seq += 1;
        }
        for i in 0..20u64 {
            let at = 1_000_000_000 + i * 3_000_000_000;
            q.insert(t(at), seq, wake(1));
            expect.push((at, seq));
            seq += 1;
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn insert_earlier_than_current_day_rewinds() {
        let mut q = CalendarQueue::new();
        q.insert(t(10_000_000), 0, wake(0));
        assert_eq!(q.pop().unwrap().seq, 0);
        // The walk now sits at ~10 ms; push something at 1 ms.
        q.insert(t(1_000_000), 1, wake(1));
        q.insert(t(20_000_000), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
    }

    #[test]
    fn saturated_horizon_still_pops_in_order() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::MAX, 0, wake(0));
        q.insert(t(5), 1, wake(1));
        q.insert(SimTime::from_nanos(u64::MAX - 1), 2, wake(2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn mis_seeded_width_recovers() {
        // Seed with an absurdly wide hint; dense sub-microsecond traffic
        // must trigger retuning rather than degrade to linear scans.
        let mut q = CalendarQueue::with_width_hint(SimDuration::from_secs(3600));
        let wide = q.bucket_width();
        for seq in 0..4096u64 {
            q.insert(t(seq * 500), seq, wake(0));
        }
        for seq in 0..4096u64 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(
            q.bucket_width() < wide,
            "width re-estimated: {:?} -> {:?}",
            wide,
            q.bucket_width()
        );
    }

    #[test]
    fn peek_never_disturbs_order() {
        let mut q = CalendarQueue::new();
        let times = [7u64, 3, 3, 900_000_000_000, 12, 5];
        for (seq, &at) in times.iter().enumerate() {
            q.insert(t(at), seq as u64, wake(0));
        }
        while let Some(peeked) = q.peek_time() {
            let popped = q.pop().unwrap();
            assert_eq!(peeked, popped.at);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn oversized_tie_burst_drains_in_order() {
        let mut q = CalendarQueue::new();
        // Far more same-instant entries than TODAY_DRAIN, plus stragglers
        // on both sides of the burst.
        let mut expect = Vec::new();
        let mut seq = 0u64;
        for &at in &[500u64, 900] {
            q.insert(t(at), seq, wake(0));
            expect.push((at, seq));
            seq += 1;
        }
        for _ in 0..10 * TODAY_DRAIN {
            q.insert(t(700), seq, wake(1));
            expect.push((700, seq));
            seq += 1;
        }
        expect.sort_unstable();
        assert_eq!(drain_sorted(&mut q), expect);
    }

    #[test]
    fn inserts_into_active_today_buffer_stay_sorted() {
        let mut q = CalendarQueue::new();
        let base = 1_000_000u64;
        let n = 200u64; // > TODAY_DRAIN ties at one instant
        for seq in 0..n {
            q.insert(t(base), seq, wake(0));
        }
        // First pop activates the buffer.
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.today_cursor < q.today.len(), "buffer is active");
        // One insert at the buffered instant (later seq — pops after the
        // remaining ties) and one a few ns later (ordinary bucket path).
        q.insert(t(base), n, wake(2));
        q.insert(t(base + 5), n + 1, wake(2));
        // A later-day insert while the buffer is active.
        q.insert(t(base + 50_000_000), n + 2, wake(3));
        let rest = drain_sorted(&mut q);
        let mut expect: Vec<(u64, u64)> = (1..=n).map(|s| (base, s)).collect();
        expect.push((base + 5, n + 1));
        expect.push((base + 50_000_000, n + 2));
        assert_eq!(rest, expect);
    }

    #[test]
    fn insert_before_buffered_instant_flushes_and_rewinds() {
        let mut q = CalendarQueue::new();
        let base = 10_000_000u64;
        for seq in 0..100u64 {
            q.insert(t(base), seq, wake(0));
        }
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.today_cursor < q.today.len(), "buffer is active");
        // Insert earlier than the buffered day: buffer must flush back.
        q.insert(t(5), 100, wake(1));
        assert_eq!(q.today.len(), 0, "buffer flushed");
        assert_eq!(q.pop().unwrap().seq, 100);
        for seq in 1..100u64 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_at_agrees_with_peek_then_pop() {
        // Mixed regime: a tie burst (buffer path), small tie runs (the
        // tie_pending rescan path) and unique times (pop_at must refuse).
        let mk = || {
            let mut q = CalendarQueue::new();
            let mut seq = 0u64;
            for _ in 0..3 * TODAY_DRAIN {
                q.insert(t(2_000), seq, wake(0));
                seq += 1;
            }
            // Small tie runs spaced far apart, so they land in days of
            // their own (the tie_pending rescan path, not the buffer).
            for i in 0..51u64 {
                q.insert(t(10_000_000 + 1_000_000 * (i / 3)), seq, wake(1));
                seq += 1;
            }
            for i in 0..50u64 {
                q.insert(t(100_000_000 + 1_000_000 * i), seq, wake(2));
                seq += 1;
            }
            q
        };
        let mut a = mk();
        let mut b = mk();
        // Drain `a` with pop + pop_at batching, `b` with pop only.
        let mut batched = Vec::new();
        while let Some(e) = a.pop() {
            let at = e.at;
            batched.push((e.at.as_nanos(), e.seq));
            while let Some(f) = a.pop_at(at) {
                assert_eq!(f.at, at);
                batched.push((f.at.as_nanos(), f.seq));
            }
        }
        assert_eq!(batched, drain_sorted(&mut b));
    }

    #[test]
    fn width_hint_seeds_bucket_width() {
        let q = CalendarQueue::with_width_hint(SimDuration::from_micros(300));
        // 3 × 300 µs rounded up to a power of two = 2^20 ns ≈ 1.05 ms.
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1 << 20));
        let q = CalendarQueue::with_width_hint(SimDuration::ZERO);
        assert_eq!(q.bucket_width(), SimDuration::from_nanos(1));
    }
}
