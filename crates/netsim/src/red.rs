//! Random Early Detection (Floyd & Jacobson, 1993).
//!
//! The classic AQM the paper's related-work section traces the in-network
//! line of research back to. Not used by the paper's experiments directly
//! (those use FIFO and sfqCoDel) but included for the AQM ablation bench:
//! RED vs CoDel vs sfqCoDel under identical Cubic load.
//!
//! Standard "gentle" RED: an EWMA of the queue size is compared against
//! `min_th`/`max_th`; between them packets are dropped with probability
//! rising to `max_p` (and to 1.0 between `max_th` and `2·max_th`), with
//! the usual count-based spacing of drops.

use crate::queue::{QueueDiscipline, QueueStats, QueuedPacket};
use crate::rng::SimRng;
use crate::time::SimTime;
use std::collections::VecDeque;

/// RED parameters (thresholds in packets, as in the original paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedParams {
    /// Lower average-occupancy threshold, packets.
    pub min_th: f64,
    /// Upper average-occupancy threshold, packets.
    pub max_th: f64,
    /// Mark/drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub weight: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        RedParams {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

impl RedParams {
    /// Thresholds scaled to a buffer of `capacity_pkts` packets, using
    /// the common min = cap/12, max = 3·min rule of thumb.
    pub fn for_capacity(capacity_pkts: usize) -> Self {
        let min_th = (capacity_pkts as f64 / 12.0).max(2.0);
        RedParams {
            min_th,
            max_th: 3.0 * min_th,
            ..Default::default()
        }
    }
}

/// A RED-managed FIFO with a hard byte capacity backstop.
pub struct Red {
    params: RedParams,
    capacity_bytes: u64,
    q: VecDeque<QueuedPacket>,
    bytes: u64,
    avg: f64,
    /// Packets since the last early drop (spaces drops apart).
    count: i64,
    rng: SimRng,
    stats: QueueStats,
}

impl Red {
    /// An empty RED queue; `seed` drives the probabilistic drops.
    pub fn new(capacity_bytes: u64, params: RedParams, seed: u64) -> Self {
        assert!(params.min_th < params.max_th, "min_th must be < max_th");
        assert!((0.0..=1.0).contains(&params.max_p));
        Red {
            params,
            capacity_bytes,
            q: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            count: -1,
            rng: SimRng::from_seed(seed),
            stats: QueueStats::default(),
        }
    }

    /// Current EWMA of the queue size, packets.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn early_drop(&mut self) -> bool {
        let p = &self.params;
        if self.avg < p.min_th {
            self.count = -1;
            return false;
        }
        // "Gentle" RED: drop probability ramps to 1 between max_th and
        // 2·max_th rather than jumping.
        let pb = if self.avg < p.max_th {
            p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th)
        } else if self.avg < 2.0 * p.max_th {
            p.max_p + (1.0 - p.max_p) * (self.avg - p.max_th) / p.max_th
        } else {
            return true;
        };
        self.count += 1;
        // Spacing: effective probability pb / (1 − count·pb).
        let pa = (pb / (1.0 - self.count as f64 * pb).max(1e-9)).clamp(0.0, 1.0);
        if self.rng.chance(pa) {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl QueueDiscipline for Red {
    fn enqueue(&mut self, qp: QueuedPacket, _now: SimTime) -> bool {
        // Update the average on every arrival (idle-time correction
        // omitted: the study's bottlenecks are persistently busy).
        self.avg = (1.0 - self.params.weight) * self.avg + self.params.weight * self.q.len() as f64;

        if self.bytes + qp.pkt.size() as u64 > self.capacity_bytes || self.early_drop() {
            self.stats.dropped += 1;
            return false;
        }
        self.bytes += qp.pkt.size() as u64;
        self.stats.enqueued += 1;
        self.q.push_back(qp);
        true
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<QueuedPacket> {
        let qp = self.q.pop_front()?;
        self.bytes -= qp.pkt.size() as u64;
        self.stats.dequeued += 1;
        Some(qp)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "red"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    fn qp(seq: u64) -> QueuedPacket {
        QueuedPacket {
            pkt: Packet::data(FlowId(0), seq, 0, SimTime::ZERO, seq, false),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn no_drops_below_min_threshold() {
        let mut red = Red::new(1 << 24, RedParams::default(), 1);
        // alternate enqueue/dequeue: queue stays at 0-1, avg < min_th
        for i in 0..1000 {
            assert!(red.enqueue(qp(i), SimTime::ZERO));
            red.dequeue(SimTime::ZERO);
        }
        assert_eq!(red.stats().dropped, 0);
    }

    #[test]
    fn early_drops_between_thresholds() {
        let mut red = Red::new(1 << 24, RedParams::default(), 2);
        // build a standing queue of ~30 packets (above max_th = 15):
        // keep the queue long; avg climbs; drops must appear well before
        // the byte capacity is reached.
        let mut accepted = 0;
        for i in 0..5_000 {
            if red.enqueue(qp(i), SimTime::ZERO) {
                accepted += 1;
            }
            if red.len_packets() > 30 {
                red.dequeue(SimTime::ZERO);
            }
        }
        let st = red.stats();
        assert!(st.dropped > 100, "expected early drops, got {st:?}");
        assert!(accepted > 0);
        assert!(red.avg_queue() > RedParams::default().min_th);
    }

    #[test]
    fn hard_capacity_backstop() {
        let mut red = Red::new(
            15_000,
            RedParams {
                weight: 0.0001,
                ..Default::default()
            },
            3,
        );
        // with a nearly frozen avg, early drops are rare; the byte cap
        // must still bound the queue
        for i in 0..100 {
            red.enqueue(qp(i), SimTime::ZERO);
        }
        assert!(red.len_bytes() <= 15_000);
        assert!(red.len_packets() <= 10);
    }

    #[test]
    fn conservation() {
        let mut red = Red::new(1 << 20, RedParams::default(), 4);
        let mut accepted = 0u64;
        for i in 0..500 {
            if red.enqueue(qp(i), SimTime::ZERO) {
                accepted += 1;
            }
        }
        let mut drained = 0u64;
        while red.dequeue(SimTime::ZERO).is_some() {
            drained += 1;
        }
        assert_eq!(accepted, drained);
        assert_eq!(red.len_bytes(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            let mut red = Red::new(1 << 24, RedParams::default(), seed);
            let mut pattern = Vec::new();
            for i in 0..2_000 {
                pattern.push(red.enqueue(qp(i), SimTime::ZERO));
                if red.len_packets() > 25 {
                    red.dequeue(SimTime::ZERO);
                }
            }
            pattern
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "min_th must be < max_th")]
    fn rejects_inverted_thresholds() {
        Red::new(
            1 << 20,
            RedParams {
                min_th: 20.0,
                max_th: 10.0,
                ..Default::default()
            },
            1,
        );
    }
}
