//! TCP NewReno-style AIMD congestion control.
//!
//! This is both a baseline in its own right and the paper's model of
//! incumbent cross-traffic: "Remy uses an AIMD protocol similar to TCP
//! NewReno to simulate TCP cross-traffic" (§4.5). Standard behaviour:
//! slow start to `ssthresh`, additive increase of one packet per RTT in
//! congestion avoidance, multiplicative decrease of one half on a loss
//! event (at most once per RTT), window collapse to one on timeout.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};

const INITIAL_CWND: f64 = 2.0;
const INITIAL_SSTHRESH: f64 = 1e9;
const MIN_CWND: f64 = 1.0;

/// NewReno/AIMD congestion control.
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
    /// Loss events inside the recovery window are one event (NewReno's
    /// once-per-RTT halving).
    recovery_until: SimTime,
    last_rtt: SimDuration,
    /// Latest receive-window advertisement; clamps
    /// [`CongestionControl::window`] (the transport clamps too — this
    /// keeps the scheme's own view honest).
    rwnd: Option<f64>,
}

impl NewReno {
    pub fn new() -> Self {
        NewReno {
            cwnd: INITIAL_CWND,
            ssthresh: INITIAL_SSTHRESH,
            recovery_until: SimTime::ZERO,
            last_rtt: SimDuration::from_millis(100),
            rwnd: None,
        }
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for NewReno {
    fn reset(&mut self, _now: SimTime) {
        self.cwnd = INITIAL_CWND;
        self.ssthresh = INITIAL_SSTHRESH;
        self.recovery_until = SimTime::ZERO;
        self.rwnd = None;
    }

    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, info: &AckInfo) {
        if let Some(w) = info.rwnd {
            self.rwnd = Some(w as f64);
        }
        if let Some(rtt) = info.rtt {
            self.last_rtt = rtt;
        }
        if self.in_slow_start() {
            self.cwnd += 1.0;
        } else {
            // additive increase: one packet per window per RTT
            self.cwnd += 1.0 / self.cwnd.max(1.0);
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return; // still recovering from the same loss event
        }
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.recovery_until = now + self.last_rtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = MIN_CWND;
        self.recovery_until = now + self.last_rtt;
    }

    fn window(&self) -> f64 {
        match self.rwnd {
            Some(r) => self.cwnd.min(r),
            None => self.cwnd,
        }
    }

    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO // pure window-based, ack-clocked
    }

    fn name(&self) -> String {
        "newreno".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack() -> Ack {
        Ack {
            flow: FlowId(0),
            seq: 0,
            epoch: 0,
            echo_sent_at: SimTime::ZERO,
            echo_tx_index: 0,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn info(rtt_ms: u64) -> AckInfo {
        AckInfo {
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(rtt_ms),
            in_flight: 1,
            rwnd: None,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new();
        assert!(cc.in_slow_start());
        let w0 = cc.window();
        // one ack per outstanding packet: +1 each -> exponential growth
        for _ in 0..10 {
            cc.on_ack(t(100), &ack(), &info(100));
        }
        assert_eq!(cc.window(), w0 + 10.0);
    }

    #[test]
    fn congestion_avoidance_is_additive() {
        let mut cc = NewReno::new();
        cc.ssthresh = 10.0;
        cc.cwnd = 10.0;
        assert!(!cc.in_slow_start());
        // a window's worth of acks adds ~1 packet
        for _ in 0..10 {
            cc.on_ack(t(100), &ack(), &info(100));
        }
        assert!((cc.window() - 11.0).abs() < 0.06, "got {}", cc.window());
    }

    #[test]
    fn loss_halves_once_per_rtt() {
        let mut cc = NewReno::new();
        cc.cwnd = 64.0;
        cc.ssthresh = 64.0;
        cc.last_rtt = SimDuration::from_millis(100);
        cc.on_loss(t(1000));
        assert_eq!(cc.window(), 32.0);
        // burst of further losses within the same RTT: ignored
        cc.on_loss(t(1010));
        cc.on_loss(t(1050));
        assert_eq!(cc.window(), 32.0);
        // a loss after recovery window halves again
        cc.on_loss(t(1200));
        assert_eq!(cc.window(), 16.0);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut cc = NewReno::new();
        cc.cwnd = 50.0;
        cc.ssthresh = 50.0;
        cc.on_timeout(t(1000));
        assert_eq!(cc.window(), 1.0);
        assert_eq!(cc.ssthresh, 25.0);
        // subsequent growth is slow-start until ssthresh
        assert!(cc.in_slow_start());
    }

    #[test]
    fn floor_of_two_on_ssthresh() {
        let mut cc = NewReno::new();
        cc.cwnd = 2.0;
        cc.on_loss(t(100));
        assert_eq!(cc.ssthresh, 2.0);
        assert_eq!(cc.window(), 2.0);
    }

    #[test]
    fn reset_restores_slow_start() {
        let mut cc = NewReno::new();
        cc.cwnd = 40.0;
        cc.ssthresh = 20.0;
        cc.reset(t(0));
        assert_eq!(cc.window(), INITIAL_CWND);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn unpaced() {
        assert_eq!(NewReno::new().intersend(), SimDuration::ZERO);
    }
}
