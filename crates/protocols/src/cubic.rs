//! TCP Cubic congestion control (RFC 8312).
//!
//! The paper's primary human-designed baseline: "TCP Cubic, the default
//! congestion-control protocol in Linux". Window growth in congestion
//! avoidance follows the cubic function `W(t) = C·(t−K)³ + W_max` anchored
//! at the last loss, with the TCP-friendly region ensuring Cubic is never
//! slower than an AIMD flow, fast convergence on consecutive losses, and
//! β = 0.7 multiplicative decrease.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};

/// Cubic scaling constant (packets/s³), RFC 8312 §5.1.
pub const C: f64 = 0.4;
/// Multiplicative decrease factor, RFC 8312 §4.5.
pub const BETA: f64 = 0.7;

const INITIAL_CWND: f64 = 2.0;
const INITIAL_SSTHRESH: f64 = 1e9;

/// TCP Cubic.
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Previous `w_max` for fast convergence.
    w_last_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset at which the cubic touches `w_max`.
    k: f64,
    /// AIMD-tracking estimate for the TCP-friendly region.
    w_est: f64,
    recovery_until: SimTime,
    last_rtt: SimDuration,
    /// Latest receive-window advertisement, if the receiver sent one;
    /// clamps [`CongestionControl::window`]. The transport already caps
    /// the effective window at `min(cwnd, rwnd)` — this belt-and-braces
    /// clamp keeps the scheme's own view of its window honest too.
    rwnd: Option<f64>,
}

impl Cubic {
    pub fn new() -> Self {
        Cubic {
            cwnd: INITIAL_CWND,
            ssthresh: INITIAL_SSTHRESH,
            w_max: 0.0,
            w_last_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            recovery_until: SimTime::ZERO,
            last_rtt: SimDuration::from_millis(100),
            rwnd: None,
        }
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn enter_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        self.k = if self.w_max > self.cwnd {
            ((self.w_max - self.cwnd) / C).cbrt()
        } else {
            0.0
        };
        self.w_est = self.cwnd;
    }

    /// The cubic window at elapsed epoch time `t` seconds.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn reset(&mut self, _now: SimTime) {
        *self = Cubic::new();
    }

    fn on_ack(&mut self, now: SimTime, _ack: &Ack, info: &AckInfo) {
        if let Some(w) = info.rwnd {
            self.rwnd = Some(w as f64);
        }
        if let Some(rtt) = info.rtt {
            self.last_rtt = rtt;
        }
        if self.in_slow_start() {
            self.cwnd += 1.0;
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(now);
        }
        let t = (now - self.epoch_start.expect("epoch set")).as_secs_f64();
        let rtt = self.last_rtt.as_secs_f64();

        // TCP-friendly region (RFC 8312 §4.2): a NewReno flow would have
        // grown by 3(1-β)/(1+β) packets per RTT since the epoch began.
        let alpha = 3.0 * (1.0 - BETA) / (1.0 + BETA);
        self.w_est += alpha / self.cwnd.max(1.0);
        let w_tcp = self.w_est;

        let target = self.w_cubic(t + rtt);
        if w_tcp > target && w_tcp > self.cwnd {
            // friendly region: grow like AIMD
            self.cwnd = w_tcp;
        } else if target > self.cwnd {
            // concave/convex region: close a fraction of the gap per ack
            self.cwnd += (target - self.cwnd) / self.cwnd.max(1.0);
        }
        self.cwnd = self.cwnd.clamp(1.0, 1e9);
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return;
        }
        // Fast convergence (RFC 8312 §4.6): release bandwidth when the
        // saturation point is dropping.
        if self.cwnd < self.w_last_max {
            self.w_last_max = self.cwnd;
            self.w_max = self.cwnd * (1.0 + BETA) / 2.0;
        } else {
            self.w_last_max = self.cwnd;
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(1.0);
        self.ssthresh = self.cwnd.max(2.0);
        self.epoch_start = None;
        self.recovery_until = now + self.last_rtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.w_last_max = self.cwnd;
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(2.0);
        self.cwnd = 1.0;
        self.epoch_start = None;
        self.recovery_until = now + self.last_rtt;
    }

    fn window(&self) -> f64 {
        match self.rwnd {
            Some(r) => self.cwnd.min(r),
            None => self.cwnd,
        }
    }

    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn name(&self) -> String {
        "cubic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack() -> Ack {
        Ack {
            flow: FlowId(0),
            seq: 0,
            epoch: 0,
            echo_sent_at: SimTime::ZERO,
            echo_tx_index: 0,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn info(rtt_ms: u64) -> AckInfo {
        AckInfo {
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(rtt_ms),
            in_flight: 1,
            rwnd: None,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn slow_start_then_loss() {
        let mut cc = Cubic::new();
        for _ in 0..62 {
            cc.on_ack(t(100), &ack(), &info(100));
        }
        assert_eq!(cc.window(), 64.0);
        cc.on_loss(t(1000));
        assert!((cc.window() - 64.0 * BETA).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn k_anchors_cubic_at_wmax() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 100.0;
        cc.on_loss(t(0));
        cc.enter_epoch(t(0));
        // At t = K the cubic equals w_max.
        let at_k = cc.w_cubic(cc.k);
        assert!((at_k - cc.w_max).abs() < 1e-9);
        // before K: below w_max; after: above
        assert!(cc.w_cubic(cc.k - 1.0) < cc.w_max);
        assert!(cc.w_cubic(cc.k + 1.0) > cc.w_max);
    }

    #[test]
    fn concave_growth_approaches_wmax() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 100.0;
        cc.on_loss(t(0));
        let floor = cc.window();
        // stream of acks over simulated seconds
        let mut now = 100u64;
        for _ in 0..2000 {
            cc.on_ack(t(now), &ack(), &info(100));
            now += 10;
        }
        assert!(cc.window() > floor, "window recovers after loss");
        assert!(
            cc.window() > 95.0,
            "should approach old w_max within 20 s, got {}",
            cc.window()
        );
    }

    #[test]
    fn fast_convergence_lowers_wmax_on_consecutive_losses() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 100.0;
        cc.on_loss(t(0));
        let w_max_1 = cc.w_max;
        assert_eq!(w_max_1, 100.0);
        // second loss before recovering to 100
        cc.on_loss(t(5000));
        assert!(
            cc.w_max < cc.w_last_max.max(1.0) + 1e-9 && cc.w_max < w_max_1,
            "fast convergence reduces w_max: {}",
            cc.w_max
        );
    }

    #[test]
    fn loss_once_per_rtt() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 100.0;
        cc.last_rtt = SimDuration::from_millis(100);
        cc.on_loss(t(1000));
        let after_first = cc.window();
        cc.on_loss(t(1050));
        assert_eq!(cc.window(), after_first, "second loss in same RTT ignored");
    }

    #[test]
    fn timeout_collapses() {
        let mut cc = Cubic::new();
        cc.cwnd = 80.0;
        cc.ssthresh = 80.0;
        cc.on_timeout(t(500));
        assert_eq!(cc.window(), 1.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn rwnd_advertisement_clamps_window() {
        let mut cc = Cubic::new();
        cc.cwnd = 50.0;
        cc.ssthresh = 10.0;
        let mut i = info(100);
        i.rwnd = Some(8);
        cc.on_ack(t(100), &ack(), &i);
        assert!(cc.window() <= 8.0, "rwnd caps the window: {}", cc.window());
        // A later ack without an advertisement keeps the clamp.
        cc.on_ack(t(200), &ack(), &info(100));
        assert!(cc.window() <= 8.0);
        // reset() clears it with the rest of the state.
        cc.reset(t(300));
        assert_eq!(cc.window(), INITIAL_CWND);
    }

    #[test]
    fn tcp_friendly_region_dominates_at_small_windows() {
        // With a tiny w_max the cubic term is flat; growth should at least
        // match AIMD's alpha per RTT.
        let mut cc = Cubic::new();
        cc.cwnd = 4.0;
        cc.ssthresh = 4.0;
        cc.w_max = 4.0;
        let start = cc.window();
        let mut now = 0u64;
        // ~25 RTTs of acks (4 acks per 100 ms RTT)
        for _ in 0..100 {
            cc.on_ack(t(now), &ack(), &info(100));
            now += 25;
        }
        // AIMD-paced growth: each ack adds alpha/cwnd, so 100 acks from a
        // window of 4 should gain several packets (the flat cubic alone
        // would gain almost nothing).
        assert!(
            cc.window() > start + 5.0,
            "TCP-friendly growth too slow: {}",
            cc.window()
        );
    }
}
