//! Whisker trees: piecewise-constant mappings from congestion memory to
//! actions.
//!
//! Remy "assumes a piecewise-constant mapping, and searches for the mapping
//! that maximizes the average value of the objective function" (§3.3). The
//! memory space is recursively partitioned into axis-aligned boxes
//! ("whiskers"), each holding one [`Action`]. The executor looks up the
//! whisker containing the current memory point; the optimizer refines the
//! mapping by improving whisker actions and splitting heavily-used
//! whiskers.

use crate::action::Action;
use crate::memory::{MemoryPoint, NUM_SIGNALS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound of the representable memory space per signal
/// (EWMAs in milliseconds; RTT ratio dimensionless).
pub const SIGNAL_MAX: MemoryPoint = [4000.0, 4000.0, 4000.0, 64.0];

/// An axis-aligned half-open box `[lower, upper)` in memory space.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryRange {
    pub lower: MemoryPoint,
    pub upper: MemoryPoint,
}

impl MemoryRange {
    /// The whole representable memory space.
    pub fn whole() -> Self {
        MemoryRange {
            lower: [0.0; NUM_SIGNALS],
            upper: SIGNAL_MAX,
        }
    }

    pub fn contains(&self, p: &MemoryPoint) -> bool {
        (0..NUM_SIGNALS).all(|i| p[i] >= self.lower[i] && p[i] < self.upper[i])
    }

    /// Clamp a raw memory point into the representable space (the EWMAs
    /// are unbounded in principle; the tree maps everything beyond
    /// `SIGNAL_MAX` to the outermost whisker).
    pub fn clamp_point(p: &MemoryPoint) -> MemoryPoint {
        let mut q = *p;
        for i in 0..NUM_SIGNALS {
            q[i] = q[i].clamp(0.0, SIGNAL_MAX[i] * (1.0 - 1e-12));
        }
        q
    }

    pub fn midpoint(&self, dim: usize) -> f64 {
        (self.lower[dim] + self.upper[dim]) / 2.0
    }

    pub fn width(&self, dim: usize) -> f64 {
        self.upper[dim] - self.lower[dim]
    }
}

/// A leaf of the tree: one box and its action, plus usage statistics the
/// optimizer reads (how often the whisker fired, and the mean memory point
/// observed inside it, used as the split point).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Whisker {
    pub domain: MemoryRange,
    pub action: Action,
    #[serde(default)]
    pub use_count: u64,
    #[serde(default)]
    pub obs_sum: MemoryPoint,
}

impl Whisker {
    pub fn new(domain: MemoryRange, action: Action) -> Self {
        Whisker {
            domain,
            action,
            use_count: 0,
            obs_sum: [0.0; NUM_SIGNALS],
        }
    }

    fn observe(&mut self, p: &MemoryPoint) {
        self.use_count += 1;
        for (acc, v) in self.obs_sum.iter_mut().zip(p) {
            *acc += v;
        }
    }

    /// Mean observed memory point (None if never used).
    pub fn mean_observation(&self) -> Option<MemoryPoint> {
        if self.use_count == 0 {
            return None;
        }
        let mut m = self.obs_sum;
        for v in &mut m {
            *v /= self.use_count as f64;
        }
        Some(m)
    }
}

/// Identifies a leaf by its position in an in-order traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeafId(pub usize);

/// The piecewise-constant memory→action mapping.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WhiskerTree {
    Leaf(Whisker),
    Node {
        dim: usize,
        split_at: f64,
        below: Box<WhiskerTree>,
        above: Box<WhiskerTree>,
    },
}

impl WhiskerTree {
    /// A single whisker covering all of memory space with the default
    /// action — Remy's initialization.
    pub fn default_tree() -> Self {
        WhiskerTree::Leaf(Whisker::new(MemoryRange::whole(), Action::default()))
    }

    /// Single whisker with a given action (tests, hand-built protocols).
    pub fn uniform(action: Action) -> Self {
        WhiskerTree::Leaf(Whisker::new(MemoryRange::whole(), action))
    }

    /// Look up the action for a memory point without recording usage.
    pub fn action_for(&self, point: &MemoryPoint) -> Action {
        let p = MemoryRange::clamp_point(point);
        self.leaf_for(&p).action
    }

    /// Look up and record usage (executor path).
    pub fn use_action_for(&mut self, point: &MemoryPoint) -> Action {
        let p = MemoryRange::clamp_point(point);
        let w = self.leaf_for_mut(&p);
        w.observe(&p);
        w.action
    }

    fn leaf_for(&self, p: &MemoryPoint) -> &Whisker {
        match self {
            WhiskerTree::Leaf(w) => w,
            WhiskerTree::Node {
                dim,
                split_at,
                below,
                above,
            } => {
                if p[*dim] < *split_at {
                    below.leaf_for(p)
                } else {
                    above.leaf_for(p)
                }
            }
        }
    }

    fn leaf_for_mut(&mut self, p: &MemoryPoint) -> &mut Whisker {
        match self {
            WhiskerTree::Leaf(w) => w,
            WhiskerTree::Node {
                dim,
                split_at,
                below,
                above,
            } => {
                if p[*dim] < *split_at {
                    below.leaf_for_mut(p)
                } else {
                    above.leaf_for_mut(p)
                }
            }
        }
    }

    pub fn num_leaves(&self) -> usize {
        match self {
            WhiskerTree::Leaf(_) => 1,
            WhiskerTree::Node { below, above, .. } => below.num_leaves() + above.num_leaves(),
        }
    }

    /// In-order list of leaves.
    pub fn leaves(&self) -> Vec<&Whisker> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Whisker>) {
        match self {
            WhiskerTree::Leaf(w) => out.push(w),
            WhiskerTree::Node { below, above, .. } => {
                below.collect_leaves(out);
                above.collect_leaves(out);
            }
        }
    }

    fn leaf_mut_by_id(&mut self, id: LeafId) -> Option<&mut Whisker> {
        fn walk<'a>(
            t: &'a mut WhiskerTree,
            id: usize,
            counter: &mut usize,
        ) -> Option<&'a mut Whisker> {
            match t {
                WhiskerTree::Leaf(w) => {
                    let mine = *counter;
                    *counter += 1;
                    if mine == id {
                        Some(w)
                    } else {
                        None
                    }
                }
                WhiskerTree::Node { below, above, .. } => {
                    walk(below, id, counter).or_else(|| walk(above, id, counter))
                }
            }
        }
        let mut counter = 0;
        walk(self, id.0, &mut counter)
    }

    pub fn leaf_by_id(&self, id: LeafId) -> Option<&Whisker> {
        self.leaves().into_iter().nth(id.0)
    }

    /// The most heavily used leaf, if any use was recorded.
    pub fn most_used_leaf(&self) -> Option<LeafId> {
        let leaves = self.leaves();
        let (idx, best) = leaves.iter().enumerate().max_by_key(|(_, w)| w.use_count)?;
        if best.use_count == 0 {
            None
        } else {
            Some(LeafId(idx))
        }
    }

    pub fn set_leaf_action(&mut self, id: LeafId, action: Action) -> bool {
        match self.leaf_mut_by_id(id) {
            Some(w) => {
                w.action = action;
                true
            }
            None => false,
        }
    }

    /// Clear all usage statistics (between optimizer evaluations).
    pub fn reset_counts(&mut self) {
        match self {
            WhiskerTree::Leaf(w) => {
                w.use_count = 0;
                w.obs_sum = [0.0; NUM_SIGNALS];
            }
            WhiskerTree::Node { below, above, .. } => {
                below.reset_counts();
                above.reset_counts();
            }
        }
    }

    /// Merge usage statistics from a structurally identical tree (the
    /// optimizer runs per-sender clones and folds their counts back).
    pub fn absorb_counts(&mut self, other: &WhiskerTree) {
        match (self, other) {
            (WhiskerTree::Leaf(a), WhiskerTree::Leaf(b)) => {
                a.use_count += b.use_count;
                for i in 0..NUM_SIGNALS {
                    a.obs_sum[i] += b.obs_sum[i];
                }
            }
            (
                WhiskerTree::Node {
                    below: b1,
                    above: a1,
                    ..
                },
                WhiskerTree::Node {
                    below: b2,
                    above: a2,
                    ..
                },
            ) => {
                b1.absorb_counts(b2);
                a1.absorb_counts(a2);
            }
            _ => panic!("absorb_counts on structurally different trees"),
        }
    }

    /// Fold flat per-leaf usage counters (as accumulated by executors
    /// against a [`crate::compiled::CompiledTree`]) into this tree's
    /// whiskers. Counter index i maps to the i-th in-order leaf — the
    /// same order `leaves()` and [`LeafId`] use.
    pub fn absorb_usage(&mut self, usage: &crate::compiled::UsageCounts) {
        fn walk(t: &mut WhiskerTree, idx: &mut usize, usage: &crate::compiled::UsageCounts) {
            match t {
                WhiskerTree::Leaf(w) => {
                    let id = LeafId(*idx);
                    *idx += 1;
                    w.use_count += usage.use_count(id);
                    let obs = usage.obs_sum(id);
                    for (acc, v) in w.obs_sum.iter_mut().zip(obs) {
                        *acc += v;
                    }
                }
                WhiskerTree::Node { below, above, .. } => {
                    walk(below, idx, usage);
                    walk(above, idx, usage);
                }
            }
        }
        assert_eq!(
            usage.len(),
            self.num_leaves(),
            "usage counters do not match tree shape"
        );
        let mut idx = 0;
        walk(self, &mut idx, usage);
    }

    /// Snapshot this tree's per-leaf usage into a flat counter set (the
    /// inverse of [`absorb_usage`](Self::absorb_usage)).
    pub fn usage_snapshot(&self) -> crate::compiled::UsageCounts {
        let mut usage = crate::compiled::UsageCounts::new(self.num_leaves());
        for (i, w) in self.leaves().iter().enumerate() {
            usage.add_raw(LeafId(i), w.use_count, &w.obs_sum);
        }
        usage
    }

    /// Split a leaf along `dim`. The split point is the mean observed
    /// value in that dimension (falling back to the box midpoint), clamped
    /// strictly inside the box. Both children inherit the parent action.
    /// Returns false if the leaf doesn't exist or the box is too thin.
    pub fn split_leaf(&mut self, id: LeafId, dim: usize) -> bool {
        fn walk(t: &mut WhiskerTree, id: usize, dim: usize, counter: &mut usize) -> bool {
            match t {
                WhiskerTree::Leaf(w) => {
                    let mine = *counter;
                    *counter += 1;
                    if mine != id {
                        return false;
                    }
                    let lo = w.domain.lower[dim];
                    let hi = w.domain.upper[dim];
                    if hi - lo < 1e-9 {
                        return false;
                    }
                    let mut at = w
                        .mean_observation()
                        .map(|m| m[dim])
                        .unwrap_or_else(|| w.domain.midpoint(dim));
                    // keep the split strictly interior
                    let eps = (hi - lo) * 1e-6;
                    if at <= lo + eps || at >= hi - eps {
                        at = w.domain.midpoint(dim);
                    }
                    let mut below_dom = w.domain;
                    below_dom.upper[dim] = at;
                    let mut above_dom = w.domain;
                    above_dom.lower[dim] = at;
                    let action = w.action;
                    *t = WhiskerTree::Node {
                        dim,
                        split_at: at,
                        below: Box::new(WhiskerTree::Leaf(Whisker::new(below_dom, action))),
                        above: Box::new(WhiskerTree::Leaf(Whisker::new(above_dom, action))),
                    };
                    true
                }
                WhiskerTree::Node { below, above, .. } => {
                    walk(below, id, dim, counter) || walk(above, id, dim, counter)
                }
            }
        }
        let mut counter = 0;
        walk(self, id.0, dim, &mut counter)
    }

    /// Total recorded uses across all leaves.
    pub fn total_uses(&self) -> u64 {
        self.leaves().iter().map(|w| w.use_count).sum()
    }
}

impl fmt::Display for WhiskerTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WhiskerTree ({} leaves):", self.num_leaves())?;
        for (i, w) in self.leaves().iter().enumerate() {
            writeln!(
                f,
                "  [{i}] rec[{:.1},{:.1}) slow[{:.1},{:.1}) send[{:.1},{:.1}) rttr[{:.2},{:.2}) -> {} (uses={})",
                w.domain.lower[0],
                w.domain.upper[0],
                w.domain.lower[1],
                w.domain.upper[1],
                w.domain.lower[2],
                w.domain.upper[2],
                w.domain.lower[3],
                w.domain.upper[3],
                w.action,
                w.use_count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tree_covers_everything() {
        let t = WhiskerTree::default_tree();
        assert_eq!(t.num_leaves(), 1);
        for p in [
            [0.0, 0.0, 0.0, 0.0],
            [3999.0, 10.0, 0.5, 1.0],
            [1e9, 1e9, 1e9, 1e9], // clamped into range
        ] {
            assert_eq!(t.action_for(&p), Action::default());
        }
    }

    #[test]
    fn split_routes_points_to_children() {
        let mut t = WhiskerTree::default_tree();
        assert!(t.split_leaf(LeafId(0), 3)); // split on rtt_ratio at midpoint 32
        assert_eq!(t.num_leaves(), 2);
        let low = Action::new(1.0, 5.0, 1.0);
        let high = Action::new(0.5, -5.0, 10.0);
        assert!(t.set_leaf_action(LeafId(0), low));
        assert!(t.set_leaf_action(LeafId(1), high));
        assert_eq!(t.action_for(&[0.0, 0.0, 0.0, 1.0]), low);
        assert_eq!(t.action_for(&[0.0, 0.0, 0.0, 50.0]), high);
    }

    #[test]
    fn split_uses_mean_observation() {
        let mut t = WhiskerTree::default_tree();
        // record uses clustered around rec_ewma = 100
        for _ in 0..10 {
            t.use_action_for(&[100.0, 0.0, 0.0, 1.0]);
        }
        assert!(t.split_leaf(LeafId(0), 0));
        match &t {
            WhiskerTree::Node { dim, split_at, .. } => {
                assert_eq!(*dim, 0);
                assert!(
                    (*split_at - 100.0).abs() < 1e-6,
                    "split at mean, got {split_at}"
                );
            }
            _ => panic!("expected node"),
        }
    }

    #[test]
    fn use_counting_and_most_used() {
        let mut t = WhiskerTree::default_tree();
        t.split_leaf(LeafId(0), 3);
        // leaf 0: rtt_ratio < 32; leaf 1: >= 32
        for _ in 0..5 {
            t.use_action_for(&[0.0, 0.0, 0.0, 1.0]);
        }
        t.use_action_for(&[0.0, 0.0, 0.0, 40.0]);
        assert_eq!(t.most_used_leaf(), Some(LeafId(0)));
        assert_eq!(t.total_uses(), 6);
        t.reset_counts();
        assert_eq!(t.total_uses(), 0);
        assert_eq!(t.most_used_leaf(), None);
    }

    #[test]
    fn absorb_counts_merges() {
        let mut a = WhiskerTree::default_tree();
        a.split_leaf(LeafId(0), 0);
        let mut b = a.clone();
        a.use_action_for(&[10.0, 0.0, 0.0, 1.0]);
        b.use_action_for(&[10.0, 0.0, 0.0, 1.0]);
        b.use_action_for(&[3000.0, 0.0, 0.0, 1.0]);
        a.absorb_counts(&b);
        let leaves = a.leaves();
        assert_eq!(leaves[0].use_count, 2);
        assert_eq!(leaves[1].use_count, 1);
    }

    #[test]
    #[should_panic(expected = "structurally different")]
    fn absorb_counts_rejects_mismatch() {
        let mut a = WhiskerTree::default_tree();
        let mut b = WhiskerTree::default_tree();
        b.split_leaf(LeafId(0), 0);
        a.absorb_counts(&b);
    }

    #[test]
    fn repeated_splits_partition_cleanly() {
        let mut t = WhiskerTree::default_tree();
        // split a few times along different dims
        assert!(t.split_leaf(LeafId(0), 0));
        assert!(t.split_leaf(LeafId(0), 1));
        assert!(t.split_leaf(LeafId(2), 3));
        assert_eq!(t.num_leaves(), 4);
        // each leaf's domain must contain its own midpoint and route back
        // to itself
        for (i, w) in t.leaves().iter().enumerate() {
            let mut mid = [0.0; NUM_SIGNALS];
            for (d, m) in mid.iter_mut().enumerate() {
                *m = w.domain.midpoint(d);
            }
            assert!(w.domain.contains(&mid));
            let found = t.leaf_for(&mid);
            assert_eq!(found.domain, w.domain, "point routes to leaf {i}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let mut t = WhiskerTree::default_tree();
        t.split_leaf(LeafId(0), 2);
        t.set_leaf_action(LeafId(1), Action::new(0.7, -1.0, 5.0));
        let json = serde_json::to_string(&t).unwrap();
        let back: WhiskerTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn leaf_by_id_matches_leaves_order() {
        let mut t = WhiskerTree::default_tree();
        t.split_leaf(LeafId(0), 0);
        t.split_leaf(LeafId(1), 1);
        let leaves = t.leaves();
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(t.leaf_by_id(LeafId(i)).unwrap().domain, leaf.domain);
        }
        assert!(t.leaf_by_id(LeafId(99)).is_none());
    }
}
