//! The Tao protocol executor: RemyCC at run time.
//!
//! A Tao ("tractable attempt at optimal") protocol is a whisker tree
//! produced by the optimizer. At run time the sender keeps the 4-signal
//! congestion [`Memory`]; on every acknowledgment it updates the memory,
//! looks up the whisker covering the current memory point, and applies the
//! whisker's action: `cwnd ← m·cwnd + b`, pacing floor τ (§3.5).
//!
//! The executor walks a [`CompiledTree`] — the whisker tree flattened
//! into a contiguous arena — and records per-whisker usage in a flat
//! [`UsageCounts`] buffer. The compiled tree is immutable and shared
//! (`Arc`) so many senders in one simulation, and many simulations in one
//! evaluation batch, reuse a single compilation instead of cloning the
//! recursive tree per sender.

use crate::compiled::{CompiledTree, UsageCounts};
use crate::memory::{Memory, SignalMask};
use crate::whisker::{MemoryRange, WhiskerTree};
use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};
use std::sync::Arc;

/// Initial congestion window at flow (re)start, packets.
pub const INITIAL_WINDOW: f64 = 2.0;

/// Runtime executor for a Tao protocol.
pub struct TaoCc {
    tree: Arc<CompiledTree>,
    usage: UsageCounts,
    memory: Memory,
    cwnd: f64,
    intersend: SimDuration,
    name: String,
    /// Latest receive-window advertisement; clamps
    /// [`CongestionControl::window`] (the transport clamps too — this
    /// keeps the scheme's own view honest).
    rwnd: Option<f64>,
}

impl TaoCc {
    pub fn new(tree: WhiskerTree, name: impl Into<String>) -> Self {
        Self::with_mask(tree, SignalMask::all(), name)
    }

    /// Executor with a §3.4 signal-knockout mask.
    pub fn with_mask(tree: WhiskerTree, mask: SignalMask, name: impl Into<String>) -> Self {
        Self::from_compiled(CompiledTree::compile_shared(&tree), mask, name)
    }

    /// Executor over a pre-compiled (and possibly shared) tree — the
    /// evaluation hot path compiles each candidate once and hands the same
    /// `Arc` to every sender in every scenario.
    pub fn from_compiled(
        tree: Arc<CompiledTree>,
        mask: SignalMask,
        name: impl Into<String>,
    ) -> Self {
        let usage = UsageCounts::new(tree.num_leaves());
        let mut cc = TaoCc {
            tree,
            usage,
            memory: Memory::new(mask),
            cwnd: INITIAL_WINDOW,
            intersend: SimDuration::ZERO,
            name: name.into(),
            rwnd: None,
        };
        cc.apply_current_whisker_pacing();
        cc
    }

    fn apply_current_whisker_pacing(&mut self) {
        // Between reset and the first ack, pace with the action at the
        // all-zero memory point (the flow-start whisker).
        let a = self.tree.action_for(&self.memory.point());
        self.intersend = SimDuration::from_millis_f64(a.intersend_ms);
    }

    /// Usage statistics collected during execution (the optimizer reads
    /// these after an evaluation run). Index-aligned with the tree's
    /// in-order leaves.
    pub fn usage(&self) -> &UsageCounts {
        &self.usage
    }

    /// Total whisker lookups recorded so far.
    pub fn total_uses(&self) -> u64 {
        self.usage.total_uses()
    }

    /// The compiled tree this executor runs.
    pub fn compiled_tree(&self) -> &Arc<CompiledTree> {
        &self.tree
    }

    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }
}

impl CongestionControl for TaoCc {
    fn reset(&mut self, _now: SimTime) {
        self.memory.reset();
        self.cwnd = INITIAL_WINDOW;
        self.rwnd = None;
        self.apply_current_whisker_pacing();
    }

    fn on_ack(&mut self, now: SimTime, ack: &Ack, info: &AckInfo) {
        if let Some(w) = info.rwnd {
            self.rwnd = Some(w as f64);
        }
        self.memory.on_ack(now, ack);
        let p = MemoryRange::clamp_point(&self.memory.point());
        let leaf = self.tree.lookup_clamped(&p);
        self.usage.record(leaf, &p);
        let action = self.tree.action(leaf);
        self.cwnd = action.apply_to_window(self.cwnd);
        self.intersend = SimDuration::from_millis_f64(action.intersend_ms);
    }

    fn on_loss(&mut self, _now: SimTime) {
        // Remy-designed protocols react to the ack stream only; loss shows
        // up as RTT inflation and slower ack arrival, both captured in the
        // memory signals.
    }

    fn on_timeout(&mut self, _now: SimTime) {
        // Defensive: after a full RTO (no acks for the whole timeout) the
        // signal state is stale; restart the flow as at epoch start. This
        // mirrors the watchdog in the authors' ns-2 RemyCC port.
        self.memory.reset();
        self.cwnd = INITIAL_WINDOW;
        self.apply_current_whisker_pacing();
    }

    fn window(&self) -> f64 {
        match self.rwnd {
            Some(r) => self.cwnd.min(r),
            None => self.cwnd,
        }
    }

    fn intersend(&self) -> SimDuration {
        self.intersend
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::whisker::LeafId;
    use netsim::packet::FlowId;

    fn ack_at(sent_ms: u64, seq: u64) -> Ack {
        Ack {
            flow: FlowId(0),
            seq,
            epoch: 0,
            echo_sent_at: SimTime::ZERO + SimDuration::from_millis(sent_ms),
            echo_tx_index: seq,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn info() -> AckInfo {
        AckInfo {
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            in_flight: 1,
            rwnd: None,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn applies_action_per_ack() {
        let tree = WhiskerTree::uniform(Action::new(1.0, 2.0, 5.0));
        let mut cc = TaoCc::new(tree, "tao-test");
        assert_eq!(cc.window(), INITIAL_WINDOW);
        cc.on_ack(t(100), &ack_at(0, 0), &info());
        assert_eq!(cc.window(), INITIAL_WINDOW + 2.0);
        cc.on_ack(t(110), &ack_at(5, 1), &info());
        assert_eq!(cc.window(), INITIAL_WINDOW + 4.0);
        assert_eq!(cc.intersend(), SimDuration::from_millis(5));
    }

    #[test]
    fn multiplicative_decrease_clamps_at_one() {
        let tree = WhiskerTree::uniform(Action::new(0.5, 0.0, 1.0));
        let mut cc = TaoCc::new(tree, "tao-test");
        for i in 0..20 {
            cc.on_ack(t(100 + i * 10), &ack_at(i * 10, i), &info());
        }
        assert_eq!(cc.window(), 1.0, "window floor");
    }

    #[test]
    fn reset_restores_initial_state() {
        let tree = WhiskerTree::uniform(Action::new(1.0, 3.0, 2.0));
        let mut cc = TaoCc::new(tree, "tao-test");
        cc.on_ack(t(100), &ack_at(0, 0), &info());
        assert!(cc.window() > INITIAL_WINDOW);
        cc.reset(t(200));
        assert_eq!(cc.window(), INITIAL_WINDOW);
        assert_eq!(cc.intersend(), SimDuration::from_millis(2));
    }

    #[test]
    fn different_whiskers_fire_by_memory_state() {
        // Split on rtt_ratio: calm regime grows, congested regime shrinks.
        let mut tree = WhiskerTree::default_tree();
        tree.split_leaf(LeafId(0), 3);
        // after midpoint split at rtt_ratio = 32, re-split lower half to
        // get a useful boundary near 2.0
        match &mut tree {
            WhiskerTree::Node { split_at, .. } => *split_at = 2.0,
            _ => unreachable!(),
        }
        tree.set_leaf_action(LeafId(0), Action::new(1.0, 1.0, 1.0));
        tree.set_leaf_action(LeafId(1), Action::new(0.5, 0.0, 1.0));
        let mut cc = TaoCc::new(tree, "tao-test");

        // RTT == min RTT: ratio 1 -> growth whisker
        cc.on_ack(t(100), &ack_at(0, 0), &info());
        let w = cc.window();
        assert!(w > INITIAL_WINDOW);

        // now a hugely inflated RTT: ratio > 2 -> shrink whisker
        cc.on_ack(t(500), &ack_at(200, 1), &info());
        assert!(cc.window() < w, "congested whisker shrinks window");
    }

    #[test]
    fn timeout_resets_like_epoch_start() {
        let tree = WhiskerTree::uniform(Action::new(1.0, 5.0, 0.5));
        let mut cc = TaoCc::new(tree, "tao-test");
        cc.on_ack(t(100), &ack_at(0, 0), &info());
        cc.on_ack(t(120), &ack_at(10, 1), &info());
        assert!(cc.window() > INITIAL_WINDOW);
        cc.on_timeout(t(2000));
        assert_eq!(cc.window(), INITIAL_WINDOW);
    }

    #[test]
    fn usage_counts_accumulate_per_executor() {
        let tree = WhiskerTree::default_tree();
        let mut cc = TaoCc::new(tree, "tao-test");
        for i in 0..7 {
            cc.on_ack(t(100 + i * 10), &ack_at(i * 10, i), &info());
        }
        assert_eq!(cc.total_uses(), 7);
    }

    #[test]
    fn shared_compiled_tree_keeps_counts_separate() {
        let mut tree = WhiskerTree::default_tree();
        tree.split_leaf(LeafId(0), 3);
        let compiled = CompiledTree::compile_shared(&tree);
        let mut a = TaoCc::from_compiled(compiled.clone(), SignalMask::all(), "a");
        let mut b = TaoCc::from_compiled(compiled, SignalMask::all(), "b");
        a.on_ack(t(100), &ack_at(0, 0), &info());
        a.on_ack(t(110), &ack_at(5, 1), &info());
        b.on_ack(t(100), &ack_at(0, 0), &info());
        assert_eq!(a.total_uses(), 2);
        assert_eq!(b.total_uses(), 1);
        // counts fold back into the editing tree
        let mut merged = tree.clone();
        merged.reset_counts();
        merged.absorb_usage(a.usage());
        merged.absorb_usage(b.usage());
        assert_eq!(merged.total_uses(), 3);
    }
}
