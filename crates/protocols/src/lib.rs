//! # protocols — congestion-control algorithms for the learnability study
//!
//! Implementations of every end-to-end protocol the paper evaluates:
//!
//! * [`tao::TaoCc`] — the executor for Remy-designed "tractable attempt at
//!   optimal" protocols: a 4-signal congestion [`memory::Memory`] driving a
//!   piecewise-constant [`whisker::WhiskerTree`] of window/pacing
//!   [`action::Action`]s (§3.3–3.5 of the paper).
//! * [`newreno::NewReno`] — AIMD / TCP NewReno, also the model of
//!   incumbent TCP cross-traffic in the TCP-awareness experiments (§4.5).
//! * [`cubic::Cubic`] — TCP Cubic per RFC 8312, the paper's main
//!   human-designed baseline.
//! * [`vegas::Vegas`] — the delay-based protocol §4.5 cites as the
//!   canonical "squeezed out by TCP" cautionary tale.
//! * [`pcc::Pcc`] — a PCC-style *online* learner (randomized rate
//!   micro-experiments scored by a throughput/loss/delay-gradient
//!   utility): the no-offline-training counterpoint to Tao protocols.
//! * [`const_window::ConstWindow`] — fixed window/pacing, for calibration
//!   and tests.
//!
//! All protocols implement [`netsim::transport::CongestionControl`] and
//! plug into the simulator's reliability layer.

pub mod action;
pub mod compiled;
pub mod const_window;
pub mod cubic;
pub mod memory;
pub mod newreno;
pub mod pcc;
pub mod tao;
pub mod vegas;
pub mod whisker;

pub use action::Action;
pub use compiled::{CompiledLeaf, CompiledTree, UsageCounts};
pub use const_window::ConstWindow;
pub use cubic::Cubic;
pub use memory::{Memory, MemoryPoint, Signal, SignalMask, NUM_SIGNALS};
pub use newreno::NewReno;
pub use pcc::Pcc;
pub use tao::TaoCc;
pub use vegas::Vegas;
pub use whisker::{LeafId, MemoryRange, Whisker, WhiskerTree};
