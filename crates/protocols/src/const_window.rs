//! Fixed-window (and optionally fixed-rate) protocols.
//!
//! Not part of the paper's protocol zoo, but indispensable for calibrating
//! the simulator (a window of one BDP should exactly fill a link with no
//! queueing) and for tests that need a protocol with no feedback dynamics.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};

/// A protocol that keeps a constant window and constant pacing interval.
pub struct ConstWindow {
    window: f64,
    intersend: SimDuration,
}

impl ConstWindow {
    pub fn new(window: f64) -> Self {
        ConstWindow {
            window,
            intersend: SimDuration::ZERO,
        }
    }

    pub fn with_pacing(window: f64, intersend: SimDuration) -> Self {
        ConstWindow { window, intersend }
    }

    /// Window sized to `multiple` bandwidth-delay products of the path.
    pub fn bdp_multiple(rate_bps: f64, min_rtt_s: f64, multiple: f64) -> Self {
        let bdp_packets = rate_bps * min_rtt_s / 8.0 / 1500.0;
        ConstWindow::new((bdp_packets * multiple).max(1.0))
    }
}

impl CongestionControl for ConstWindow {
    fn reset(&mut self, _now: SimTime) {}
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {}
    fn on_loss(&mut self, _now: SimTime) {}
    fn on_timeout(&mut self, _now: SimTime) {}

    fn window(&self) -> f64 {
        self.window
    }

    fn intersend(&self) -> SimDuration {
        self.intersend
    }

    fn name(&self) -> String {
        format!("const-window-{}", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_sizing() {
        // 12 Mbps * 0.1 s = 1.2 Mbit = 150 kB = 100 packets
        let cc = ConstWindow::bdp_multiple(12e6, 0.100, 1.0);
        assert!((cc.window() - 100.0).abs() < 1e-9);
        let half = ConstWindow::bdp_multiple(12e6, 0.100, 0.5);
        assert!((half.window() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_bdp_floors_at_one() {
        let cc = ConstWindow::bdp_multiple(1e3, 0.001, 1.0);
        assert_eq!(cc.window(), 1.0);
    }

    #[test]
    fn pacing_passthrough() {
        let cc = ConstWindow::with_pacing(10.0, SimDuration::from_millis(3));
        assert_eq!(cc.intersend(), SimDuration::from_millis(3));
        assert_eq!(cc.window(), 10.0);
    }
}
