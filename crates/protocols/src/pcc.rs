//! A PCC-style online-learning sender (after Dong et al., *PCC:
//! Re-architecting Congestion Control for Consistent High Performance*,
//! NSDI 2015).
//!
//! Where Tao protocols are designed *offline* by simulating a scenario
//! model, PCC learns *online*: it runs randomized rate micro-experiments
//! against the live network and moves its rate along the empirical
//! utility gradient. That makes it the study's natural no-offline-training
//! learned baseline — no scenario model, no training budget, just the
//! same ack/loss/timeout transport hooks every other scheme gets.
//!
//! The control loop, simplified from PCC Allegro:
//!
//! * Time is sliced into **monitor intervals** (MIs) of one smoothed RTT.
//!   Per MI the sender records delivery rate, loss fraction, and the RTT
//!   gradient, then scores the interval with [`utility`]:
//!   `throughput · (1 − β·loss − γ·delay-gradient⁺)`.
//! * In the **starting** phase the rate doubles each MI while utility
//!   keeps improving (slow-start analogue); the first regression drops
//!   back and hands over to probing.
//! * In steady state each decision runs **two trial MIs** at
//!   `rate·(1±ε)` in an order chosen by a deterministic per-flow RNG
//!   (the randomized micro-experiment), then moves the base rate toward
//!   the trial with higher utility.
//! * Step size follows a **confidence-amplifying ladder**: consecutive
//!   moves in the same direction grow the multiplier (1, 2, 3, …, capped),
//!   and a direction flip resets it to 1 — fast convergence on a clean
//!   gradient, small oscillation around the optimum.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};

/// Loss penalty β: one MI at 10% loss forfeits the whole interval.
pub const BETA: f64 = 10.0;
/// Delay-gradient penalty γ on the positive part of d(RTT)/dt.
pub const GAMMA: f64 = 2.0;
/// Trial amplitude ε of a rate micro-experiment.
pub const EPSILON: f64 = 0.05;
/// Cap of the confidence ladder (multiples of ε).
pub const MAX_CONFIDENCE: f64 = 8.0;

const INIT_RATE_PPS: f64 = 10.0;
const MIN_RATE_PPS: f64 = 0.2;
const MAX_RATE_PPS: f64 = 1e6;
const MIN_MI: SimDuration = SimDuration::from_millis(10);

/// Per-MI utility: `throughput − β·loss·throughput − γ·gradient⁺·throughput`.
///
/// `throughput_pps` is the delivery rate over the interval,
/// `loss_frac` the lost fraction of transmissions attributed to it, and
/// `delay_gradient` the dimensionless d(RTT)/dt across it. Only queue
/// *growth* is penalized (a draining queue is good news).
pub fn utility(throughput_pps: f64, loss_frac: f64, delay_gradient: f64) -> f64 {
    throughput_pps * (1.0 - BETA * loss_frac - GAMMA * delay_gradient.max(0.0))
}

/// Where the controller is in its experiment schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Double the rate each MI while utility improves.
    Starting,
    /// Running trial MI 1 of 2 of a micro-experiment.
    FirstTrial,
    /// Running trial MI 2 of 2 (opposite direction).
    SecondTrial,
}

/// Accumulated statistics of the monitor interval in flight.
#[derive(Clone, Copy, Debug, Default)]
struct MiStats {
    acks: u64,
    losses: u64,
    first_rtt_s: Option<f64>,
    last_rtt_s: f64,
}

/// The PCC-style online sender.
pub struct Pcc {
    /// Base (decision) rate in packets per second.
    rate_pps: f64,
    /// Rate in force for the current MI (base ± ε during trials).
    trial_rate_pps: f64,
    phase: Phase,
    /// +1.0 / −1.0: the direction of the *first* trial this experiment.
    first_dir: f64,
    /// Utility measured by the first trial MI.
    first_utility: f64,
    /// Signed confidence: magnitude is the ladder rung, sign the last
    /// move's direction.
    confidence: f64,
    /// Utility of the previous MI during `Starting`.
    last_utility: f64,
    mi: MiStats,
    mi_start: SimTime,
    mi_end: SimTime,
    srtt: SimDuration,
    /// Deterministic per-flow stream for trial-order randomization.
    rng_state: u64,
    /// Latest receive-window advertisement; clamps
    /// [`CongestionControl::window`] (the transport clamps too — this
    /// keeps the scheme's own view honest).
    rwnd: Option<f64>,
}

impl Pcc {
    pub fn new() -> Self {
        Pcc {
            rate_pps: INIT_RATE_PPS,
            trial_rate_pps: INIT_RATE_PPS,
            phase: Phase::Starting,
            first_dir: 1.0,
            first_utility: 0.0,
            confidence: 0.0,
            last_utility: f64::NEG_INFINITY,
            mi: MiStats::default(),
            mi_start: SimTime::ZERO,
            mi_end: SimTime::ZERO,
            srtt: SimDuration::from_millis(100),
            rng_state: 0x9E37_79B9_7F4A_7C15,
            rwnd: None,
        }
    }

    /// Current base rate (packets/s) — the quantity the gradient steps.
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// xorshift64: deterministic, independent of the simulation seed, so
    /// a run is a pure function of (config, seed) like every protocol.
    fn coin(&mut self) -> bool {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x & 1 == 1
    }

    fn mi_len(&self) -> SimDuration {
        self.srtt.max(MIN_MI)
    }

    fn begin_mi(&mut self, now: SimTime, rate: f64) {
        self.trial_rate_pps = rate.clamp(MIN_RATE_PPS, MAX_RATE_PPS);
        self.mi = MiStats::default();
        self.mi_start = now;
        self.mi_end = now + self.mi_len();
    }

    /// Score the MI that just ended.
    fn mi_utility(&self, now: SimTime) -> f64 {
        let dur = (now - self.mi_start).as_secs_f64().max(1e-9);
        let throughput = self.mi.acks as f64 / dur;
        let total = self.mi.acks + self.mi.losses;
        let loss = if total == 0 {
            0.0
        } else {
            self.mi.losses as f64 / total as f64
        };
        let gradient = match self.mi.first_rtt_s {
            Some(first) if self.mi.last_rtt_s > 0.0 => (self.mi.last_rtt_s - first) / dur,
            _ => 0.0,
        };
        utility(throughput, loss, gradient)
    }

    /// Launch a fresh two-MI micro-experiment around the base rate.
    fn start_experiment(&mut self, now: SimTime) {
        self.first_dir = if self.coin() { 1.0 } else { -1.0 };
        self.phase = Phase::FirstTrial;
        self.begin_mi(now, self.rate_pps * (1.0 + self.first_dir * EPSILON));
    }

    /// Move the base rate one ladder step in `dir` and restart probing.
    fn apply_decision(&mut self, now: SimTime, dir: f64) {
        self.confidence = if self.confidence * dir > 0.0 {
            (self.confidence.abs() + 1.0).min(MAX_CONFIDENCE) * dir
        } else {
            dir
        };
        let step = 1.0 + self.confidence.abs() * EPSILON * dir;
        self.rate_pps = (self.rate_pps * step).clamp(MIN_RATE_PPS, MAX_RATE_PPS);
        self.start_experiment(now);
    }

    /// Close the MI ending at `now` and advance the experiment schedule.
    fn finish_mi(&mut self, now: SimTime) {
        let u = self.mi_utility(now);
        match self.phase {
            Phase::Starting => {
                if u > self.last_utility {
                    self.last_utility = u;
                    self.rate_pps = (self.trial_rate_pps * 2.0).min(MAX_RATE_PPS);
                    self.begin_mi(now, self.rate_pps);
                } else {
                    // Overshot: fall back to the last good rate and start
                    // gradient probing.
                    self.rate_pps = (self.trial_rate_pps / 2.0).max(MIN_RATE_PPS);
                    self.start_experiment(now);
                }
            }
            Phase::FirstTrial => {
                self.first_utility = u;
                self.phase = Phase::SecondTrial;
                self.begin_mi(now, self.rate_pps * (1.0 - self.first_dir * EPSILON));
            }
            Phase::SecondTrial => {
                // The utility gradient's sign decides the move: toward
                // whichever trial scored higher (ties hold, resetting
                // confidence via the flip rule).
                let dir = if self.first_utility > u {
                    self.first_dir
                } else {
                    -self.first_dir
                };
                self.apply_decision(now, dir);
            }
        }
    }
}

impl Default for Pcc {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Pcc {
    fn reset(&mut self, now: SimTime) {
        *self = Pcc::new();
        self.begin_mi(now, self.rate_pps);
    }

    fn on_ack(&mut self, now: SimTime, _ack: &Ack, info: &AckInfo) {
        if let Some(w) = info.rwnd {
            self.rwnd = Some(w as f64);
        }
        if let Some(rtt) = info.rtt {
            // EWMA smoothing keeps the MI length stable across jitter.
            let s = self.srtt.as_secs_f64() * 0.875 + rtt.as_secs_f64() * 0.125;
            self.srtt = SimDuration::from_secs_f64(s);
            let r = rtt.as_secs_f64();
            if self.mi.first_rtt_s.is_none() {
                self.mi.first_rtt_s = Some(r);
            }
            self.mi.last_rtt_s = r;
        }
        self.mi.acks += 1;
        if now >= self.mi_end {
            self.finish_mi(now);
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        self.mi.losses += 1;
        if now >= self.mi_end {
            self.finish_mi(now);
        }
    }

    fn on_timeout(&mut self, now: SimTime) {
        // A timeout is evidence beyond any micro-experiment: collapse the
        // rate, drop accumulated confidence, and relearn from probing.
        self.rate_pps = (self.rate_pps * 0.5).max(MIN_RATE_PPS);
        self.confidence = 0.0;
        self.last_utility = f64::NEG_INFINITY;
        self.start_experiment(now);
    }

    fn window(&self) -> f64 {
        // Rate-based sender: the window only bounds in-flight so pacing
        // (intersend) is the binding control. 2×BDP at the trial rate,
        // capped by any receive-window advertisement.
        let w = (self.trial_rate_pps * self.srtt.as_secs_f64() * 2.0 + 4.0).max(2.0);
        match self.rwnd {
            Some(r) => w.min(r),
            None => w,
        }
    }

    fn intersend(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.trial_rate_pps)
    }

    fn name(&self) -> String {
        "pcc".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack() -> Ack {
        Ack {
            flow: FlowId(0),
            seq: 0,
            epoch: 0,
            echo_sent_at: SimTime::ZERO,
            echo_tx_index: 0,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn info(rtt_ms: u64) -> AckInfo {
        AckInfo {
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(rtt_ms),
            in_flight: 1,
            rwnd: None,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn utility_sign_flips_under_loss_ramp() {
        // Same throughput: a clean interval scores positive, a ramping
        // loss rate drives the utility gradient negative — the sign flip
        // the controller steers by.
        let clean = utility(100.0, 0.0, 0.0);
        assert!(clean > 0.0);
        let lossy = utility(100.0, 0.2, 0.0);
        assert!(lossy < 0.0, "20% loss must dominate: {lossy}");
        // Monotone in loss: each injected increment lowers utility.
        let mut prev = clean;
        for pct in 1..=10 {
            let u = utility(100.0, pct as f64 / 100.0, 0.0);
            assert!(u < prev, "utility must fall as loss ramps: {u} !< {prev}");
            prev = u;
        }
    }

    #[test]
    fn utility_sign_flips_under_delay_ramp() {
        // A growing queue (positive RTT gradient) flips utility negative;
        // a draining queue is not penalized.
        let flat = utility(100.0, 0.0, 0.0);
        let ramping = utility(100.0, 0.0, 0.8);
        assert!(flat > 0.0 && ramping < 0.0, "flat={flat} ramping={ramping}");
        let mut prev = flat;
        for step in 1..=8 {
            let u = utility(100.0, 0.0, step as f64 * 0.1);
            assert!(u < prev, "utility must fall as delay ramps");
            prev = u;
        }
        let draining = utility(100.0, 0.0, -0.5);
        assert_eq!(draining, flat, "only queue growth is penalized");
    }

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn starting_phase_doubles_until_utility_regresses() {
        let mut cc = Pcc::new();
        cc.reset(t(0));
        let r0 = cc.rate_pps();
        // Clean elastic path: acks come back at whatever pace the sender
        // chose, so each doubled MI measures doubled throughput and the
        // starting phase keeps doubling.
        let mut now = 0.0;
        for _ in 0..2000 {
            now += cc.intersend().as_secs_f64();
            cc.on_ack(at(now), &ack(), &info(100));
            if now > 5.0 {
                break;
            }
        }
        assert!(
            cc.rate_pps() >= r0 * 4.0,
            "clean path must grow the rate: {} -> {}",
            r0,
            cc.rate_pps()
        );
    }

    #[test]
    fn losses_drive_the_rate_back_down() {
        let mut cc = Pcc::new();
        cc.reset(t(0));
        cc.rate_pps = 1000.0;
        cc.phase = Phase::FirstTrial;
        cc.begin_mi(t(0), 1000.0);
        let before = cc.rate_pps();
        // 100 pps bottleneck: sends beyond capacity are losses, so the
        // higher-rate trial of every micro-experiment measures more loss
        // and lower utility — the gradient points down.
        let mut now = 0.0;
        let mut next_deliver = 0.0;
        for _ in 0..20_000 {
            now += cc.intersend().as_secs_f64();
            if now >= next_deliver {
                next_deliver = now + 0.01;
                cc.on_ack(at(now), &ack(), &info(100));
            } else {
                cc.on_loss(at(now));
            }
            if now > 30.0 {
                break;
            }
        }
        assert!(
            cc.rate_pps() < before / 2.0,
            "persistent loss must shrink the rate: {} -> {}",
            before,
            cc.rate_pps()
        );
    }

    #[test]
    fn confidence_ladder_amplifies_then_resets_on_flip() {
        let mut cc = Pcc::new();
        cc.reset(t(0));
        cc.rate_pps = 100.0;
        cc.confidence = 0.0;
        cc.apply_decision(t(0), 1.0);
        assert_eq!(cc.confidence, 1.0);
        cc.apply_decision(t(0), 1.0);
        assert_eq!(cc.confidence, 2.0, "same direction climbs the ladder");
        cc.apply_decision(t(0), 1.0);
        assert_eq!(cc.confidence, 3.0);
        cc.apply_decision(t(0), -1.0);
        assert_eq!(cc.confidence, -1.0, "direction flip resets to rung one");
        for _ in 0..20 {
            cc.apply_decision(t(0), -1.0);
        }
        assert_eq!(cc.confidence, -MAX_CONFIDENCE, "ladder is capped");
    }

    #[test]
    fn timeout_halves_rate_and_resets_confidence() {
        let mut cc = Pcc::new();
        cc.reset(t(0));
        cc.rate_pps = 800.0;
        cc.confidence = 5.0;
        cc.on_timeout(t(50));
        assert_eq!(cc.rate_pps(), 400.0);
        assert_eq!(cc.confidence, 0.0);
    }

    #[test]
    fn trial_order_is_deterministic() {
        let run = || {
            let mut cc = Pcc::new();
            cc.reset(t(0));
            (0..32).map(|_| cc.coin()).collect::<Vec<bool>>()
        };
        assert_eq!(run(), run(), "per-flow rng is a fixed stream");
        assert!(run().iter().any(|&b| b) && run().iter().any(|&b| !b));
    }

    #[test]
    fn pacing_follows_the_trial_rate() {
        let mut cc = Pcc::new();
        cc.reset(t(0));
        cc.begin_mi(t(0), 200.0);
        assert!((cc.intersend().as_secs_f64() - 0.005).abs() < 1e-12);
        assert!(cc.window() >= 2.0);
    }
}
