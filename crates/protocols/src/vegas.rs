//! TCP Vegas (Brakmo, O'Malley & Peterson, SIGCOMM 1994).
//!
//! The paper's §4.5 uses Vegas as the cautionary tale for delay-based
//! congestion control: it "performs well when contending only against
//! other flows of their own kind, but \[is\] 'squeezed out' by the
//! more-aggressive cross-traffic produced by traditional TCP". We
//! implement it so that claim is testable here, too.
//!
//! Vegas estimates the backlog it keeps in the bottleneck queue as
//! `diff = (cwnd/base_rtt − cwnd/rtt) · base_rtt` packets and steers the
//! window to hold `diff` between `alpha` and `beta` packets (classically
//! 1 and 3), adjusting once per RTT.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};

const INITIAL_CWND: f64 = 2.0;

/// Lower bound on the estimated backlog (packets).
pub const ALPHA: f64 = 1.0;
/// Upper bound on the estimated backlog (packets).
pub const BETA: f64 = 3.0;

/// TCP Vegas.
pub struct Vegas {
    cwnd: f64,
    ssthresh: f64,
    base_rtt: Option<SimDuration>,
    /// Minimum RTT observed within the current adjustment epoch.
    epoch_min_rtt: Option<SimDuration>,
    epoch_start: SimTime,
    last_rtt: SimDuration,
    recovery_until: SimTime,
    /// Latest receive-window advertisement; clamps
    /// [`CongestionControl::window`] (the transport clamps too — this
    /// keeps the scheme's own view honest).
    rwnd: Option<f64>,
}

impl Vegas {
    pub fn new() -> Self {
        Vegas {
            cwnd: INITIAL_CWND,
            ssthresh: 1e9,
            base_rtt: None,
            epoch_min_rtt: None,
            epoch_start: SimTime::ZERO,
            last_rtt: SimDuration::from_millis(100),
            recovery_until: SimTime::ZERO,
            rwnd: None,
        }
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Estimated queue backlog in packets, from the Vegas diff equation.
    fn backlog(&self, rtt: SimDuration) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let cur = rtt.as_secs_f64();
        if base <= 0.0 || cur <= 0.0 {
            return None;
        }
        // expected = cwnd/base, actual = cwnd/cur; diff in packets:
        Some(self.cwnd * (1.0 - base / cur))
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn reset(&mut self, now: SimTime) {
        *self = Vegas::new();
        self.epoch_start = now;
    }

    fn on_ack(&mut self, now: SimTime, _ack: &Ack, info: &AckInfo) {
        if let Some(w) = info.rwnd {
            self.rwnd = Some(w as f64);
        }
        let Some(rtt) = info.rtt else {
            return;
        };
        self.last_rtt = rtt;
        self.base_rtt = Some(match self.base_rtt {
            Some(b) => b.min(rtt),
            None => rtt,
        });
        self.epoch_min_rtt = Some(match self.epoch_min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });

        if self.in_slow_start() {
            // Vegas slow start: grow every other RTT, checking backlog.
            if let Some(diff) = self.backlog(rtt) {
                if diff > BETA {
                    self.ssthresh = self.cwnd;
                    return;
                }
            }
            self.cwnd += 0.5; // half of Reno's growth, per Vegas
            return;
        }

        // Congestion avoidance: adjust once per RTT using the epoch's
        // cleanest (minimum) RTT sample.
        if now - self.epoch_start >= self.last_rtt {
            let sample = self.epoch_min_rtt.unwrap_or(rtt);
            if let Some(diff) = self.backlog(sample) {
                if diff < ALPHA {
                    self.cwnd += 1.0;
                } else if diff > BETA {
                    self.cwnd -= 1.0;
                }
            }
            self.cwnd = self.cwnd.max(2.0);
            self.epoch_start = now;
            self.epoch_min_rtt = None;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return;
        }
        // Vegas reduces by 1/4 on fast retransmit (gentler than Reno).
        self.cwnd = (self.cwnd * 0.75).max(2.0);
        self.ssthresh = self.cwnd;
        self.recovery_until = now + self.last_rtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 2.0;
        self.recovery_until = now + self.last_rtt;
    }

    fn window(&self) -> f64 {
        match self.rwnd {
            Some(r) => self.cwnd.min(r),
            None => self.cwnd,
        }
    }

    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn name(&self) -> String {
        "vegas".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack() -> Ack {
        Ack {
            flow: FlowId(0),
            seq: 0,
            epoch: 0,
            echo_sent_at: SimTime::ZERO,
            echo_tx_index: 0,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn info(rtt_ms: u64) -> AckInfo {
        AckInfo {
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(rtt_ms),
            in_flight: 1,
            rwnd: None,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn grows_when_below_alpha() {
        let mut cc = Vegas::new();
        cc.reset(t(0));
        cc.ssthresh = 2.0; // force congestion avoidance
                           // constant RTT = base RTT: zero backlog -> grow 1/RTT
        let w0 = cc.window();
        let mut now = 0;
        for _ in 0..10 {
            now += 110;
            cc.on_ack(t(now), &ack(), &info(100));
        }
        assert!(cc.window() > w0, "should grow: {} -> {}", w0, cc.window());
    }

    #[test]
    fn shrinks_when_backlog_exceeds_beta() {
        let mut cc = Vegas::new();
        cc.reset(t(0));
        cc.ssthresh = 2.0;
        cc.cwnd = 40.0;
        cc.on_ack(t(10), &ack(), &info(100)); // base RTT = 100 ms
                                              // now RTT inflates 30%: backlog = 40*(1-100/130) = 9.2 > beta
        let mut now = 10;
        for _ in 0..5 {
            now += 150;
            cc.on_ack(t(now), &ack(), &info(130));
        }
        assert!(cc.window() < 40.0, "should back off: {}", cc.window());
    }

    #[test]
    fn holds_steady_inside_band() {
        let mut cc = Vegas::new();
        cc.reset(t(0));
        cc.ssthresh = 2.0;
        cc.cwnd = 20.0;
        cc.on_ack(t(5), &ack(), &info(100));
        // RTT such that backlog = 20*(1-100/111) ≈ 2.0 packets: in [1,3]
        let mut now = 5;
        for _ in 0..6 {
            now += 120;
            cc.on_ack(t(now), &ack(), &info(111));
        }
        assert!(
            (cc.window() - 20.0).abs() <= 1.0,
            "inside band, window should hold: {}",
            cc.window()
        );
    }

    #[test]
    fn slow_start_exits_on_backlog() {
        let mut cc = Vegas::new();
        cc.reset(t(0));
        assert!(cc.in_slow_start());
        cc.cwnd = 30.0;
        cc.on_ack(t(5), &ack(), &info(100)); // base
        cc.on_ack(t(120), &ack(), &info(150)); // backlog 30*(1/3)=10 > beta
        assert!(!cc.in_slow_start(), "ssthresh pinned at cwnd");
    }

    #[test]
    fn loss_reduces_gently() {
        let mut cc = Vegas::new();
        cc.cwnd = 40.0;
        cc.on_loss(t(1000));
        assert!((cc.window() - 30.0).abs() < 1e-9, "3/4 reduction");
        // second loss in the same RTT is one event
        cc.on_loss(t(1010));
        assert!((cc.window() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_to_two() {
        let mut cc = Vegas::new();
        cc.cwnd = 50.0;
        cc.on_timeout(t(500));
        assert_eq!(cc.window(), 2.0);
    }
}
