//! The Tao sender's congestion memory (§3.3 of the paper).
//!
//! Four signals, updated on every acknowledgment:
//!
//! 1. `rec_ewma` — EWMA of ack interarrival times, weight 1/8.
//! 2. `slow_rec_ewma` — the same with weight 1/256 (longer history).
//! 3. `send_ewma` — EWMA of intersend times between the sender timestamps
//!    echoed in the ACKs, weight 1/8.
//! 4. `rtt_ratio` — most recent RTT over the minimum RTT seen so far.
//!
//! §3.4's knockout study removes one signal at a time; [`SignalMask`]
//! implements that by pinning masked signals to zero.

use netsim::packet::Ack;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Number of congestion signals.
pub const NUM_SIGNALS: usize = 4;

/// EWMA weight for the fast receive/send averages.
pub const FAST_ALPHA: f64 = 1.0 / 8.0;
/// EWMA weight for the slow receive average.
pub const SLOW_ALPHA: f64 = 1.0 / 256.0;

/// Index of each signal in a memory point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    RecEwma = 0,
    SlowRecEwma = 1,
    SendEwma = 2,
    RttRatio = 3,
}

impl Signal {
    pub const ALL: [Signal; NUM_SIGNALS] = [
        Signal::RecEwma,
        Signal::SlowRecEwma,
        Signal::SendEwma,
        Signal::RttRatio,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Signal::RecEwma => "rec_ewma",
            Signal::SlowRecEwma => "slow_rec_ewma",
            Signal::SendEwma => "send_ewma",
            Signal::RttRatio => "rtt_ratio",
        }
    }
}

/// A point in memory space: `[rec_ewma_ms, slow_rec_ewma_ms, send_ewma_ms,
/// rtt_ratio]`. EWMAs are in milliseconds; the ratio is dimensionless.
pub type MemoryPoint = [f64; NUM_SIGNALS];

/// Which signals a protocol is allowed to observe (§3.4 knockout).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalMask {
    pub enabled: [bool; NUM_SIGNALS],
}

impl Default for SignalMask {
    fn default() -> Self {
        SignalMask {
            enabled: [true; NUM_SIGNALS],
        }
    }
}

impl SignalMask {
    pub fn all() -> Self {
        Self::default()
    }

    /// Mask with one signal knocked out.
    pub fn without(signal: Signal) -> Self {
        let mut m = Self::default();
        m.enabled[signal as usize] = false;
        m
    }

    pub fn is_enabled(&self, signal: Signal) -> bool {
        self.enabled[signal as usize]
    }

    pub fn apply(&self, mut point: MemoryPoint) -> MemoryPoint {
        for (v, &on) in point.iter_mut().zip(&self.enabled) {
            if !on {
                *v = 0.0;
            }
        }
        point
    }
}

/// Running memory state for one Tao sender.
#[derive(Clone, Debug)]
pub struct Memory {
    rec_ewma_ms: f64,
    slow_rec_ewma_ms: f64,
    send_ewma_ms: f64,
    rtt_ratio: f64,
    last_ack_arrival: Option<SimTime>,
    last_echo_sent: Option<SimTime>,
    min_rtt: Option<SimDuration>,
    mask: SignalMask,
}

impl Memory {
    pub fn new(mask: SignalMask) -> Self {
        Memory {
            rec_ewma_ms: 0.0,
            slow_rec_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 0.0,
            last_ack_arrival: None,
            last_echo_sent: None,
            min_rtt: None,
            mask,
        }
    }

    /// Clear all signals (flow epoch restart).
    pub fn reset(&mut self) {
        self.rec_ewma_ms = 0.0;
        self.slow_rec_ewma_ms = 0.0;
        self.send_ewma_ms = 0.0;
        self.rtt_ratio = 0.0;
        self.last_ack_arrival = None;
        self.last_echo_sent = None;
        self.min_rtt = None;
    }

    /// Update on an acknowledgment arriving at the sender at `now`.
    pub fn on_ack(&mut self, now: SimTime, ack: &Ack) {
        // Receive-side signal: interarrival of acks at the sender.
        if let Some(last) = self.last_ack_arrival {
            let inter_ms = (now - last).as_millis_f64();
            if self.rec_ewma_ms == 0.0 && self.slow_rec_ewma_ms == 0.0 {
                self.rec_ewma_ms = inter_ms;
                self.slow_rec_ewma_ms = inter_ms;
            } else {
                self.rec_ewma_ms = (1.0 - FAST_ALPHA) * self.rec_ewma_ms + FAST_ALPHA * inter_ms;
                self.slow_rec_ewma_ms =
                    (1.0 - SLOW_ALPHA) * self.slow_rec_ewma_ms + SLOW_ALPHA * inter_ms;
            }
        }
        self.last_ack_arrival = Some(now);

        // Send-side signal: intersend times between echoed sender stamps.
        if let Some(last) = self.last_echo_sent {
            let inter_ms = (ack.echo_sent_at - last).as_millis_f64();
            // Echoes can arrive out of order after loss recovery; only
            // forward progress produces a sample.
            if ack.echo_sent_at > last {
                if self.send_ewma_ms == 0.0 {
                    self.send_ewma_ms = inter_ms;
                } else {
                    self.send_ewma_ms =
                        (1.0 - FAST_ALPHA) * self.send_ewma_ms + FAST_ALPHA * inter_ms;
                }
                self.last_echo_sent = Some(ack.echo_sent_at);
            }
        } else {
            self.last_echo_sent = Some(ack.echo_sent_at);
        }

        // RTT ratio.
        let rtt = now - ack.echo_sent_at;
        if !rtt.is_zero() {
            let min = match self.min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            };
            self.min_rtt = Some(min);
            self.rtt_ratio = rtt.as_secs_f64() / min.as_secs_f64();
        }
    }

    /// The current memory point with the knockout mask applied.
    pub fn point(&self) -> MemoryPoint {
        self.mask.apply([
            self.rec_ewma_ms,
            self.slow_rec_ewma_ms,
            self.send_ewma_ms,
            self.rtt_ratio,
        ])
    }

    pub fn mask(&self) -> SignalMask {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack(sent_ms: u64) -> Ack {
        Ack {
            flow: FlowId(0),
            seq: 0,
            epoch: 0,
            echo_sent_at: SimTime::ZERO + SimDuration::from_millis(sent_ms),
            echo_tx_index: 0,
            recv_at: SimTime::ZERO,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn starts_at_zero() {
        let m = Memory::new(SignalMask::all());
        assert_eq!(m.point(), [0.0; 4]);
    }

    #[test]
    fn rec_ewma_seeds_then_averages() {
        let mut m = Memory::new(SignalMask::all());
        m.on_ack(t(100), &ack(0));
        // one ack: no interarrival yet
        assert_eq!(m.point()[0], 0.0);
        m.on_ack(t(110), &ack(5));
        // first interarrival (10 ms) seeds both EWMAs
        assert!((m.point()[0] - 10.0).abs() < 1e-9);
        assert!((m.point()[1] - 10.0).abs() < 1e-9);
        m.on_ack(t(130), &ack(10));
        // second sample 20 ms: fast = 10*(7/8) + 20/8 = 11.25
        assert!((m.point()[0] - 11.25).abs() < 1e-9);
        // slow = 10*(255/256) + 20/256 = 10.0390625
        assert!((m.point()[1] - 10.0390625).abs() < 1e-9);
    }

    #[test]
    fn send_ewma_from_echoes_ignores_reordering() {
        let mut m = Memory::new(SignalMask::all());
        m.on_ack(t(100), &ack(0));
        m.on_ack(t(101), &ack(8));
        assert!((m.point()[2] - 8.0).abs() < 1e-9);
        // out-of-order echo (older sender stamp): no sample
        m.on_ack(t(102), &ack(4));
        assert!((m.point()[2] - 8.0).abs() < 1e-9);
        m.on_ack(t(103), &ack(16));
        // forward sample of 8 ms again: EWMA stays 8
        assert!((m.point()[2] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_ratio_tracks_inflation() {
        let mut m = Memory::new(SignalMask::all());
        m.on_ack(t(150), &ack(0)); // RTT 150 ms (becomes min)
        assert!((m.point()[3] - 1.0).abs() < 1e-9);
        m.on_ack(t(400), &ack(100)); // RTT 300 ms
        assert!((m.point()[3] - 2.0).abs() < 1e-9);
        // a new smaller RTT lowers the min, ratio back to 1
        m.on_ack(t(475), &ack(400)); // RTT 75 ms
        assert!((m.point()[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Memory::new(SignalMask::all());
        m.on_ack(t(100), &ack(0));
        m.on_ack(t(120), &ack(10));
        assert_ne!(m.point(), [0.0; 4]);
        m.reset();
        assert_eq!(m.point(), [0.0; 4]);
    }

    #[test]
    fn knockout_pins_signal_to_zero() {
        let mut m = Memory::new(SignalMask::without(Signal::RecEwma));
        m.on_ack(t(100), &ack(0));
        m.on_ack(t(120), &ack(10));
        m.on_ack(t(140), &ack(20));
        let p = m.point();
        assert_eq!(p[0], 0.0, "rec_ewma knocked out");
        assert!(p[2] > 0.0, "send_ewma still live");
        assert!(p[3] > 0.0, "rtt_ratio still live");
    }

    #[test]
    fn mask_without_each_signal() {
        for s in Signal::ALL {
            let mask = SignalMask::without(s);
            assert!(!mask.is_enabled(s));
            let others = Signal::ALL.iter().filter(|&&o| o as usize != s as usize);
            for &o in others {
                assert!(mask.is_enabled(o));
            }
        }
    }
}
