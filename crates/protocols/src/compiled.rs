//! Compiled whisker trees: the executor-side representation of a
//! [`crate::whisker::WhiskerTree`].
//!
//! The boxed recursive `WhiskerTree` is the optimizer's *editing*
//! structure (split, set-action, serialize); walking it on every ack
//! chases heap pointers and the `leaf_by_id` counter-walk is O(n). The
//! training inner loop looks up an action once per acknowledgment across
//! millions of simulated acks per evaluation batch, so the executor
//! compiles the tree once into a contiguous arena:
//!
//! * internal nodes live in one `Vec` with u32 index links (branch-
//!   predictable, cache-dense descent),
//! * leaves live in a flat `Vec` ordered exactly like
//!   `WhiskerTree::leaves()`, making [`LeafId`] an O(1) index,
//! * usage statistics accumulate in a separate flat [`UsageCounts`]
//!   buffer per executor, so evaluation never clones trees to collect
//!   counts.

use crate::action::Action;
use crate::memory::{MemoryPoint, NUM_SIGNALS};
use crate::whisker::{LeafId, MemoryRange, WhiskerTree};
use std::sync::Arc;

/// Child link in the arena: index into `nodes` or, with the high bit set,
/// into `leaves`.
#[derive(Clone, Copy, Debug)]
struct NodeRef(u32);

const LEAF_BIT: u32 = 1 << 31;

impl NodeRef {
    fn node(i: usize) -> Self {
        debug_assert!((i as u32) < LEAF_BIT);
        NodeRef(i as u32)
    }

    fn leaf(i: usize) -> Self {
        debug_assert!((i as u32) < LEAF_BIT);
        NodeRef(i as u32 | LEAF_BIT)
    }

    #[inline]
    fn as_leaf(self) -> Option<usize> {
        if self.0 & LEAF_BIT != 0 {
            Some((self.0 & !LEAF_BIT) as usize)
        } else {
            None
        }
    }

    #[inline]
    fn node_index(self) -> usize {
        debug_assert!(self.0 & LEAF_BIT == 0);
        self.0 as usize
    }
}

/// One internal split in the arena.
#[derive(Clone, Copy, Debug)]
struct Node {
    dim: u32,
    split_at: f64,
    below: NodeRef,
    above: NodeRef,
}

/// A compiled leaf: the whisker's box and action (usage stats live in
/// [`UsageCounts`], not here, so the tree itself is immutable and
/// shareable across senders).
#[derive(Clone, Copy, Debug)]
pub struct CompiledLeaf {
    pub domain: MemoryRange,
    pub action: Action,
}

/// Immutable, contiguous compilation of a [`WhiskerTree`].
#[derive(Clone, Debug)]
pub struct CompiledTree {
    nodes: Vec<Node>,
    leaves: Vec<CompiledLeaf>,
    root: NodeRef,
}

impl CompiledTree {
    /// Flatten `tree`. Leaf order matches `tree.leaves()` (in-order), so
    /// [`LeafId`]s are interchangeable between representations.
    pub fn compile(tree: &WhiskerTree) -> Self {
        let mut out = CompiledTree {
            nodes: Vec::with_capacity(tree.num_leaves().saturating_sub(1)),
            leaves: Vec::with_capacity(tree.num_leaves()),
            root: NodeRef::leaf(0),
        };
        out.root = out.flatten(tree);
        out
    }

    /// Convenience: compile behind an [`Arc`] for sharing across senders.
    pub fn compile_shared(tree: &WhiskerTree) -> Arc<Self> {
        Arc::new(Self::compile(tree))
    }

    fn flatten(&mut self, tree: &WhiskerTree) -> NodeRef {
        match tree {
            WhiskerTree::Leaf(w) => {
                let idx = self.leaves.len();
                self.leaves.push(CompiledLeaf {
                    domain: w.domain,
                    action: w.action,
                });
                NodeRef::leaf(idx)
            }
            WhiskerTree::Node {
                dim,
                split_at,
                below,
                above,
            } => {
                let idx = self.nodes.len();
                // Reserve the slot first so children index below parents in
                // allocation order but links stay exact.
                self.nodes.push(Node {
                    dim: *dim as u32,
                    split_at: *split_at,
                    below: NodeRef::leaf(0),
                    above: NodeRef::leaf(0),
                });
                let below = self.flatten(below);
                let above = self.flatten(above);
                self.nodes[idx].below = below;
                self.nodes[idx].above = above;
                NodeRef::node(idx)
            }
        }
    }

    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    pub fn leaf(&self, id: LeafId) -> &CompiledLeaf {
        &self.leaves[id.0]
    }

    pub fn leaves(&self) -> &[CompiledLeaf] {
        &self.leaves
    }

    /// Leaf containing an **already clamped** memory point (see
    /// [`MemoryRange::clamp_point`]). O(depth), no pointer chasing.
    #[inline]
    pub fn lookup_clamped(&self, p: &MemoryPoint) -> LeafId {
        let mut cur = self.root;
        loop {
            match cur.as_leaf() {
                Some(i) => return LeafId(i),
                None => {
                    let n = &self.nodes[cur.node_index()];
                    cur = if p[n.dim as usize] < n.split_at {
                        n.below
                    } else {
                        n.above
                    };
                }
            }
        }
    }

    /// Leaf containing a raw memory point (clamps first).
    #[inline]
    pub fn lookup(&self, p: &MemoryPoint) -> LeafId {
        self.lookup_clamped(&MemoryRange::clamp_point(p))
    }

    /// Action for a raw memory point (mirrors `WhiskerTree::action_for`).
    #[inline]
    pub fn action_for(&self, p: &MemoryPoint) -> Action {
        self.leaves[self.lookup(p).0].action
    }

    #[inline]
    pub fn action(&self, id: LeafId) -> Action {
        self.leaves[id.0].action
    }
}

/// Per-leaf usage statistics, flat and index-aligned with
/// [`CompiledTree::leaves`] / `WhiskerTree::leaves()`.
#[derive(Clone, Debug, PartialEq)]
pub struct UsageCounts {
    counts: Vec<(u64, MemoryPoint)>,
}

impl UsageCounts {
    pub fn new(num_leaves: usize) -> Self {
        UsageCounts {
            counts: vec![(0, [0.0; NUM_SIGNALS]); num_leaves],
        }
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Record one use of `leaf` at (clamped) memory point `p`.
    #[inline]
    pub fn record(&mut self, leaf: LeafId, p: &MemoryPoint) {
        let slot = &mut self.counts[leaf.0];
        slot.0 += 1;
        for (acc, v) in slot.1.iter_mut().zip(p) {
            *acc += v;
        }
    }

    /// Add a pre-aggregated (count, observation-sum) pair to one leaf.
    pub fn add_raw(&mut self, leaf: LeafId, count: u64, obs_sum: &MemoryPoint) {
        let slot = &mut self.counts[leaf.0];
        slot.0 += count;
        for (acc, v) in slot.1.iter_mut().zip(obs_sum) {
            *acc += v;
        }
    }

    pub fn use_count(&self, leaf: LeafId) -> u64 {
        self.counts[leaf.0].0
    }

    pub fn obs_sum(&self, leaf: LeafId) -> &MemoryPoint {
        &self.counts[leaf.0].1
    }

    pub fn total_uses(&self) -> u64 {
        self.counts.iter().map(|(c, _)| *c).sum()
    }

    /// Fold another counter set into this one (index-aligned).
    pub fn merge(&mut self, other: &UsageCounts) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging usage counts of different tree shapes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            a.0 += b.0;
            for i in 0..NUM_SIGNALS {
                a.1[i] += b.1[i];
            }
        }
    }

    pub fn reset(&mut self) {
        for slot in &mut self.counts {
            slot.0 = 0;
            slot.1 = [0.0; NUM_SIGNALS];
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (LeafId, u64, &MemoryPoint)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, (c, s))| (LeafId(i), *c, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whisker::SIGNAL_MAX;

    fn probe_points() -> Vec<MemoryPoint> {
        let mut pts = Vec::new();
        for a in [0.0, 10.0, 1999.0, 3999.0] {
            for b in [0.0, 250.0, 3000.0] {
                for r in [0.0, 1.0, 31.0, 63.0] {
                    pts.push([a, b, a / 2.0, r]);
                }
            }
        }
        pts.push([1e12, 1e12, 1e12, 1e12]); // clamped
        pts.push(SIGNAL_MAX);
        pts
    }

    fn split_a_lot() -> WhiskerTree {
        let mut t = WhiskerTree::default_tree();
        t.split_leaf(LeafId(0), 0);
        t.split_leaf(LeafId(1), 3);
        t.split_leaf(LeafId(0), 1);
        t.split_leaf(LeafId(3), 2);
        t.split_leaf(LeafId(2), 0);
        t
    }

    #[test]
    fn compiled_matches_recursive_lookup() {
        let mut tree = split_a_lot();
        for (i, _) in tree.clone().leaves().iter().enumerate() {
            tree.set_leaf_action(
                LeafId(i),
                Action::new(0.5 + i as f64 * 0.1, i as f64, 1.0 + i as f64),
            );
        }
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.num_leaves(), tree.num_leaves());
        for p in probe_points() {
            assert_eq!(
                compiled.action_for(&p),
                tree.action_for(&p),
                "diverged at {p:?}"
            );
        }
    }

    #[test]
    fn leaf_order_matches_in_order_traversal() {
        let tree = split_a_lot();
        let compiled = CompiledTree::compile(&tree);
        for (i, w) in tree.leaves().iter().enumerate() {
            assert_eq!(compiled.leaf(LeafId(i)).domain, w.domain);
            assert_eq!(compiled.leaf(LeafId(i)).action, w.action);
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let tree = WhiskerTree::uniform(Action::new(1.0, 2.0, 3.0));
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.num_leaves(), 1);
        assert_eq!(
            compiled.action_for(&[5.0, 5.0, 5.0, 5.0]),
            Action::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn usage_counts_accumulate_and_merge() {
        let tree = split_a_lot();
        let compiled = CompiledTree::compile(&tree);
        let mut a = UsageCounts::new(compiled.num_leaves());
        let mut b = UsageCounts::new(compiled.num_leaves());
        for (i, p) in probe_points().into_iter().enumerate() {
            let clamped = MemoryRange::clamp_point(&p);
            let leaf = compiled.lookup_clamped(&clamped);
            if i % 2 == 0 {
                a.record(leaf, &clamped);
            } else {
                b.record(leaf, &clamped);
            }
        }
        let total = a.total_uses() + b.total_uses();
        a.merge(&b);
        assert_eq!(a.total_uses(), total);
        assert_eq!(total as usize, probe_points().len());
    }
}
