//! Congestion-response actions (§3.5 of the paper).
//!
//! An action is the triple applied on every acknowledgment:
//!
//! * `window_multiple` *m* — multiplier to the congestion window,
//! * `window_increment` *b* — additive increment (packets, may be negative),
//! * `intersend_ms` *τ* — lower bound on the pacing interval.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bounds of the action space searched by the optimizer.
pub const MIN_WINDOW_MULTIPLE: f64 = 0.0;
pub const MAX_WINDOW_MULTIPLE: f64 = 2.0;
pub const MIN_WINDOW_INCREMENT: f64 = -32.0;
pub const MAX_WINDOW_INCREMENT: f64 = 32.0;
pub const MIN_INTERSEND_MS: f64 = 0.002;
pub const MAX_INTERSEND_MS: f64 = 1000.0;

/// A congestion-response action.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Multiplier m applied to the congestion window on each ack.
    pub window_multiple: f64,
    /// Increment b added to the congestion window on each ack.
    pub window_increment: f64,
    /// Minimum pacing interval τ between transmissions, milliseconds.
    pub intersend_ms: f64,
}

impl Default for Action {
    /// The optimizer's starting point: grow by one packet per ack (slow-
    /// start-like doubling) with light pacing.
    fn default() -> Self {
        Action {
            window_multiple: 1.0,
            window_increment: 1.0,
            intersend_ms: 0.25,
        }
    }
}

impl Action {
    pub fn new(window_multiple: f64, window_increment: f64, intersend_ms: f64) -> Self {
        Action {
            window_multiple,
            window_increment,
            intersend_ms,
        }
        .clamped()
    }

    /// Clamp into the legal action space.
    pub fn clamped(mut self) -> Self {
        self.window_multiple = self
            .window_multiple
            .clamp(MIN_WINDOW_MULTIPLE, MAX_WINDOW_MULTIPLE);
        self.window_increment = self
            .window_increment
            .clamp(MIN_WINDOW_INCREMENT, MAX_WINDOW_INCREMENT);
        self.intersend_ms = self.intersend_ms.clamp(MIN_INTERSEND_MS, MAX_INTERSEND_MS);
        self
    }

    pub fn is_within_bounds(&self) -> bool {
        (MIN_WINDOW_MULTIPLE..=MAX_WINDOW_MULTIPLE).contains(&self.window_multiple)
            && (MIN_WINDOW_INCREMENT..=MAX_WINDOW_INCREMENT).contains(&self.window_increment)
            && (MIN_INTERSEND_MS..=MAX_INTERSEND_MS).contains(&self.intersend_ms)
    }

    /// Candidate single-coordinate modifications at a given step scale, for
    /// the optimizer's hill-climb. Remy explores increments additively,
    /// multiples additively in small steps, and intersend geometrically.
    pub fn neighbors(&self, scale: f64) -> Vec<Action> {
        let mut out = Vec::with_capacity(6);
        let m_step = 0.01 * scale;
        let b_step = 1.0 * scale;
        let tau_factor = 1.0 + 0.08 * scale;
        out.push(Action::new(
            self.window_multiple + m_step,
            self.window_increment,
            self.intersend_ms,
        ));
        out.push(Action::new(
            self.window_multiple - m_step,
            self.window_increment,
            self.intersend_ms,
        ));
        out.push(Action::new(
            self.window_multiple,
            self.window_increment + b_step,
            self.intersend_ms,
        ));
        out.push(Action::new(
            self.window_multiple,
            self.window_increment - b_step,
            self.intersend_ms,
        ));
        out.push(Action::new(
            self.window_multiple,
            self.window_increment,
            self.intersend_ms * tau_factor,
        ));
        out.push(Action::new(
            self.window_multiple,
            self.window_increment,
            self.intersend_ms / tau_factor,
        ));
        out.retain(|a| a != self);
        out.dedup_by(|a, b| a == b);
        out
    }

    /// Apply the action to a congestion window.
    pub fn apply_to_window(&self, cwnd: f64) -> f64 {
        (self.window_multiple * cwnd + self.window_increment).clamp(1.0, 1e6)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(m={:.3}, b={:+.2}, τ={:.3}ms)",
            self.window_multiple, self.window_increment, self.intersend_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_bounds() {
        assert!(Action::default().is_within_bounds());
    }

    #[test]
    fn clamping() {
        let a = Action::new(5.0, -100.0, 1e9);
        assert_eq!(a.window_multiple, MAX_WINDOW_MULTIPLE);
        assert_eq!(a.window_increment, MIN_WINDOW_INCREMENT);
        assert_eq!(a.intersend_ms, MAX_INTERSEND_MS);
        assert!(a.is_within_bounds());
    }

    #[test]
    fn apply_to_window_clamps_low() {
        let a = Action::new(0.0, -10.0, 1.0);
        assert_eq!(a.apply_to_window(100.0), 1.0, "window floor is 1 packet");
        let grow = Action::new(1.0, 1.0, 1.0);
        assert_eq!(grow.apply_to_window(10.0), 11.0);
        let halve = Action::new(0.5, 0.0, 1.0);
        assert_eq!(halve.apply_to_window(10.0), 5.0);
    }

    #[test]
    fn neighbors_move_one_coordinate() {
        let a = Action::default();
        let n = a.neighbors(1.0);
        assert_eq!(n.len(), 6);
        for cand in &n {
            assert!(cand.is_within_bounds());
            let diffs = [
                (cand.window_multiple - a.window_multiple).abs() > 1e-12,
                (cand.window_increment - a.window_increment).abs() > 1e-12,
                (cand.intersend_ms - a.intersend_ms).abs() > 1e-12,
            ];
            assert_eq!(
                diffs.iter().filter(|&&d| d).count(),
                1,
                "exactly one coordinate changes: {cand}"
            );
        }
    }

    #[test]
    fn neighbors_at_boundary_drop_clamped_duplicates() {
        // At the multiplicative floor, the "decrease m" neighbor clamps
        // back onto the current action and must be filtered out.
        let a = Action::new(0.0, 0.0, 1.0);
        let n = a.neighbors(1.0);
        assert!(n.iter().all(|c| c != &a));
    }

    #[test]
    fn neighbor_scale_grows_steps() {
        let a = Action::default();
        let near = a.neighbors(1.0);
        let far = a.neighbors(4.0);
        let d_near = (near[0].window_multiple - a.window_multiple).abs();
        let d_far = (far[0].window_multiple - a.window_multiple).abs();
        assert!(d_far > d_near * 3.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = Action::new(0.87, -2.5, 3.2);
        let s = serde_json::to_string(&a).unwrap();
        let b: Action = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
