//! Property-based tests of the protocol implementations: EWMA bounds,
//! AIMD invariants, Cubic's window discipline, and serde stability of the
//! whisker tree.

use netsim::packet::{Ack, FlowId};
use netsim::time::{SimDuration, SimTime};
use netsim::transport::{AckInfo, CongestionControl};
use proptest::prelude::*;
use protocols::whisker::MemoryRange;
use protocols::{
    Action, CompiledTree, Cubic, LeafId, Memory, NewReno, SignalMask, UsageCounts, WhiskerTree,
};

/// Build a whisker tree from an arbitrary split script and give every
/// leaf a distinct action derived from `(m, b, tau)`.
fn build_random_tree(splits: &[(usize, usize)], m: f64, b: f64, tau: f64) -> WhiskerTree {
    let mut tree = WhiskerTree::default_tree();
    for (leaf, dim) in splits {
        let n = tree.num_leaves();
        tree.split_leaf(LeafId(leaf % n), *dim);
    }
    for i in 0..tree.num_leaves() {
        let f = i as f64;
        tree.set_leaf_action(LeafId(i), Action::new(m + f * 0.01, b + f, tau + f * 0.1));
    }
    tree
}

fn ack_at(sent_ms: u64, seq: u64) -> Ack {
    Ack {
        flow: FlowId(0),
        seq,
        epoch: 0,
        echo_sent_at: SimTime::ZERO + SimDuration::from_millis(sent_ms),
        echo_tx_index: seq,
        recv_at: SimTime::ZERO,
        was_retx: false,
        batch: 1,
        rwnd: 0,
    }
}

fn info(rtt_ms: u64) -> AckInfo {
    AckInfo {
        rtt: Some(SimDuration::from_millis(rtt_ms)),
        min_rtt: SimDuration::from_millis(rtt_ms),
        in_flight: 1,
        rwnd: None,
    }
}

proptest! {
    /// EWMAs are convex combinations: they stay within the range of the
    /// observed inter-arrival samples.
    #[test]
    fn memory_ewmas_bounded_by_samples(gaps in proptest::collection::vec(1u64..500, 2..60)) {
        let mut m = Memory::new(SignalMask::all());
        let mut now = SimTime::from_secs_f64(10.0);
        let mut sent = 0u64;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &g) in gaps.iter().enumerate() {
            now += SimDuration::from_millis(g);
            sent += g; // echo stream advances by the same gaps
            m.on_ack(now, &ack_at(sent, i as u64));
            if i >= 1 {
                lo = lo.min(g as f64);
                hi = hi.max(g as f64);
            }
        }
        let p = m.point();
        prop_assert!(p[0] >= lo - 1e-9 && p[0] <= hi + 1e-9, "rec_ewma {} not in [{lo},{hi}]", p[0]);
        prop_assert!(p[1] >= lo - 1e-9 && p[1] <= hi + 1e-9, "slow_rec {} not in [{lo},{hi}]", p[1]);
    }

    /// rtt_ratio is always >= 1 once defined (current RTT over min RTT).
    #[test]
    fn rtt_ratio_at_least_one(rtts in proptest::collection::vec(10u64..2_000, 1..50)) {
        let mut m = Memory::new(SignalMask::all());
        let mut now = SimTime::from_secs_f64(100.0);
        for (i, &rtt) in rtts.iter().enumerate() {
            now += SimDuration::from_millis(17);
            let sent = now.checked_sub(SimDuration::from_millis(rtt)).unwrap();
            let ack = Ack {
                flow: FlowId(0),
                seq: i as u64,
                epoch: 0,
                echo_sent_at: sent,
                echo_tx_index: i as u64,
                recv_at: now,
                was_retx: false,
                batch: 1,
                rwnd: 0,
            };
            m.on_ack(now, &ack);
            prop_assert!(m.point()[3] >= 1.0 - 1e-12);
        }
    }

    /// NewReno: window never exceeds start + #acks (slow start is the
    /// fastest regime), never goes below 1, and halves on loss.
    #[test]
    fn newreno_window_discipline(
        events in proptest::collection::vec(prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 1..200)
    ) {
        let mut cc = NewReno::new();
        cc.reset(SimTime::ZERO);
        let start = cc.window();
        let mut acks = 0u64;
        let mut now = SimTime::ZERO;
        for e in events {
            now += SimDuration::from_millis(200); // outside recovery
            match e {
                0 => {
                    cc.on_ack(now, &ack_at(0, acks), &info(100));
                    acks += 1;
                }
                1 => {
                    let before = cc.window();
                    cc.on_loss(now);
                    // the post-loss window is half the old one, but never
                    // below NewReno's floor of 2 packets (which can exceed
                    // a post-timeout window of 1)
                    prop_assert!(cc.window() <= before.max(2.0));
                    prop_assert!(cc.window() >= (before / 2.0).min(2.0) - 1e-9);
                }
                _ => {
                    cc.on_timeout(now);
                    prop_assert!((cc.window() - 1.0).abs() < 1e-9);
                }
            }
            prop_assert!(cc.window() >= 1.0 - 1e-12);
            prop_assert!(cc.window() <= start.max(2.0) + acks as f64 + 1e-9);
        }
    }

    /// Cubic: the window stays within [1, 1e9] under arbitrary event
    /// interleavings and never grows on a loss.
    #[test]
    fn cubic_window_bounded(
        events in proptest::collection::vec(prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 1..300),
        rtt_ms in 10u64..400,
    ) {
        let mut cc = Cubic::new();
        cc.reset(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for e in events {
            now += SimDuration::from_millis(rtt_ms);
            match e {
                0 => cc.on_ack(now, &ack_at(0, 0), &info(rtt_ms)),
                1 => {
                    let before = cc.window();
                    cc.on_loss(now);
                    prop_assert!(cc.window() <= before + 1e-9);
                }
                _ => cc.on_timeout(now),
            }
            prop_assert!((1.0..=1e9).contains(&cc.window()), "cubic window {}", cc.window());
        }
    }

    /// Whisker trees survive arbitrary action rewrites + JSON round trips.
    #[test]
    fn whisker_tree_serde_stable(
        dims in proptest::collection::vec(0usize..4, 0..6),
        m in 0.0f64..2.0,
        b in -32.0f64..32.0,
        tau in 0.01f64..100.0,
    ) {
        let mut tree = WhiskerTree::default_tree();
        for (i, d) in dims.iter().enumerate() {
            let n = tree.num_leaves();
            tree.split_leaf(protocols::LeafId(i % n), *d);
        }
        let n = tree.num_leaves();
        tree.set_leaf_action(protocols::LeafId(n / 2), Action::new(m, b, tau));
        let json = serde_json::to_string(&tree).unwrap();
        let back: WhiskerTree = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&tree, &back);
        // lookups agree after the round trip
        for probe in [[0.0, 0.0, 0.0, 0.0], [100.0, 5.0, 30.0, 1.5], [3999.0, 3999.0, 3999.0, 63.0]] {
            prop_assert_eq!(tree.action_for(&probe), back.action_for(&probe));
        }
    }

    /// The compiled arena is an exact functional copy of the recursive
    /// tree: for any split script and any memory point, `CompiledTree`
    /// resolves the same leaf (by in-order id) and the same action as the
    /// recursive walk.
    #[test]
    fn compiled_tree_matches_recursive_walk(
        splits in proptest::collection::vec((0usize..16, 0usize..4), 0..14),
        m in 0.0f64..2.0,
        b in -32.0f64..32.0,
        tau in 0.01f64..100.0,
        probes in proptest::collection::vec(
            // includes out-of-range coordinates: both sides clamp first
            (0.0f64..8000.0, 0.0f64..8000.0, 0.0f64..8000.0, 0.0f64..128.0),
            1..32
        ),
    ) {
        let tree = build_random_tree(&splits, m, b, tau);
        let compiled = CompiledTree::compile(&tree);
        prop_assert_eq!(compiled.num_leaves(), tree.num_leaves());
        // leaf order is the in-order traversal on both sides
        for (i, w) in tree.leaves().iter().enumerate() {
            prop_assert_eq!(compiled.leaf(LeafId(i)).domain, w.domain);
            prop_assert_eq!(compiled.leaf(LeafId(i)).action, w.action);
        }
        for (a, bb, c, d) in probes {
            let p = [a, bb, c, d];
            prop_assert_eq!(compiled.action_for(&p), tree.action_for(&p), "point {:?}", p);
            let clamped = MemoryRange::clamp_point(&p);
            let leaf = compiled.lookup_clamped(&clamped);
            prop_assert!(compiled.leaf(leaf).domain.contains(&clamped));
        }
    }

    /// Usage recorded against the compiled tree folds back into the
    /// recursive tree exactly as executing the recursive tree would have:
    /// `use_action_for` on a tree clone and `UsageCounts::record` +
    /// `absorb_usage` agree leaf by leaf (counts and observation sums),
    /// and flat counters round-trip through `usage_snapshot`.
    #[test]
    fn usage_counts_round_trip_absorb(
        splits in proptest::collection::vec((0usize..16, 0usize..4), 0..10),
        probes in proptest::collection::vec(
            (0.0f64..8000.0, 0.0f64..4000.0, 0.0f64..4000.0, 0.0f64..100.0),
            1..40
        ),
    ) {
        let tree = build_random_tree(&splits, 1.0, 0.0, 1.0);
        let compiled = CompiledTree::compile(&tree);

        // Reference: execute against a recursive-tree clone.
        let mut reference = tree.clone();
        // Compiled path: flat counters.
        let mut counts = UsageCounts::new(compiled.num_leaves());
        for (a, b, c, d) in &probes {
            let p = [*a, *b, *c, *d];
            reference.use_action_for(&p);
            let clamped = MemoryRange::clamp_point(&p);
            counts.record(compiled.lookup_clamped(&clamped), &clamped);
        }

        let mut absorbed = tree.clone();
        absorbed.reset_counts();
        absorbed.absorb_usage(&counts);
        prop_assert_eq!(&absorbed, &reference, "absorb_usage must equal direct execution");

        // absorb_counts (tree-to-tree merge) agrees with flat merge.
        let mut doubled_tree = absorbed.clone();
        doubled_tree.absorb_counts(&reference);
        let mut doubled_flat = counts.clone();
        doubled_flat.merge(&counts);
        let mut via_flat = tree.clone();
        via_flat.reset_counts();
        via_flat.absorb_usage(&doubled_flat);
        prop_assert_eq!(&doubled_tree, &via_flat);

        // snapshot is the exact inverse of absorb_usage
        prop_assert_eq!(&absorbed.usage_snapshot(), &counts);
    }
}
