//! Regenerate Fig 7 / Table 6: knowledge about incumbent endpoints.

use lcc_core::experiments::{tcp_aware, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", tcp_aware::run(fidelity));
}
