//! The one CLI for the whole evaluation section.
//!
//! ```sh
//! cargo run --release -p bench --bin learnability -- list
//! cargo run --release -p bench --bin learnability -- run calibration
//! cargo run --release -p bench --bin learnability -- run all --fidelity full
//! cargo run --release -p bench --bin learnability -- train all
//! ```
//!
//! See `lcc_core::cli` for the full option reference.

fn main() {
    lcc_core::cli::main()
}
