//! Mechanistic congestion-collapse verification of every committed
//! protocol asset (the conclusion's "can a protocol optimizer maintain
//! and verify this requirement mechanistically?").
//!
//! Usage: `cargo run --release -p bench --bin verify_assets`

use remy::verifier::{verify, VerifyConfig};

fn main() {
    let dir = remy::serialize::assets_dir();
    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd.filter_map(|e| e.ok()).collect(),
        Err(e) => {
            eprintln!("no assets at {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    entries.sort_by_key(|e| e.file_name());
    let cfg = VerifyConfig::default();
    let mut failed = 0;
    for entry in entries {
        let path = entry.path();
        if path.extension().map(|e| e != "json").unwrap_or(true) {
            continue;
        }
        let proto = match remy::serialize::load(&path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        let report = verify(&proto.tree, &proto.name, &cfg);
        if report.passed() {
            println!(
                "PASS {:<22} ({} probes)",
                report.protocol, report.probes_run
            );
        } else {
            failed += 1;
            println!(
                "FAIL {:<22} ({} probes, {} violations)",
                report.protocol,
                report.probes_run,
                report.violations.len()
            );
            for v in report.violations.iter().take(4) {
                println!("       [{:?}] {} — {}", v.kind, v.probe, v.detail);
            }
        }
    }
    if failed > 0 {
        println!("\n{failed} protocol(s) flagged — see above.");
    } else {
        println!("\nall committed protocols pass the collapse verifier.");
    }
}
