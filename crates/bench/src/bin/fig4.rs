//! Deprecated shim (one release): forwards to `learnability run rtt`.

fn main() {
    lcc_core::cli::forward(&["run", "rtt"]);
}
