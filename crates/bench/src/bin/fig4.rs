//! Regenerate Fig 4 / Table 4: knowledge of propagation delay.

use lcc_core::experiments::{rtt, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", rtt::run(fidelity));
}
