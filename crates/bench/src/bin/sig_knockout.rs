//! Deprecated shim (one release): forwards to `learnability run signals`.

fn main() {
    lcc_core::cli::forward(&["run", "signals"]);
}
