//! Regenerate the §3.4 signal-knockout study.

use lcc_core::experiments::{signals, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", signals::run(fidelity));
}
