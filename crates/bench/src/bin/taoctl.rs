//! Inspect trained protocol assets.
//!
//! ```sh
//! cargo run --release -p bench --bin taoctl list
//! cargo run --release -p bench --bin taoctl show tao-2x
//! cargo run --release -p bench --bin taoctl probe tao-2x 20 20 20 1.0
//! ```

use protocols::MemoryPoint;

fn usage() -> ! {
    eprintln!(
        "usage: taoctl <list | show NAME | probe NAME rec slow send rttr>\n\
         assets dir: {}",
        remy::serialize::assets_dir().display()
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let dir = remy::serialize::assets_dir();
            let mut names: Vec<String> = std::fs::read_dir(&dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .filter_map(|e| {
                            let p = e.path();
                            (p.extension()? == "json")
                                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
                        })
                        .collect()
                })
                .unwrap_or_default();
            names.sort();
            for n in &names {
                match remy::serialize::load(&remy::serialize::asset_path(n)) {
                    Ok(p) => println!(
                        "{:<24} {:>2} whiskers  score {:>8.3}",
                        p.name,
                        p.tree.num_leaves(),
                        p.score
                    ),
                    Err(e) => println!("{n:<24} (unreadable: {e})"),
                }
            }
            if names.is_empty() {
                println!("no assets in {} — run train_assets first", dir.display());
            }
        }
        Some("show") => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let p = remy::serialize::load(&remy::serialize::asset_path(name)).unwrap_or_else(|e| {
                eprintln!("cannot load {name}: {e}");
                std::process::exit(1);
            });
            println!("name:  {}", p.name);
            println!("score: {:.4}", p.score);
            println!("model: {}", p.description);
            println!("{}", p.tree);
        }
        Some("probe") => {
            if args.len() != 6 {
                usage();
            }
            let name = &args[1];
            let point: MemoryPoint = [
                args[2].parse().unwrap_or_else(|_| usage()),
                args[3].parse().unwrap_or_else(|_| usage()),
                args[4].parse().unwrap_or_else(|_| usage()),
                args[5].parse().unwrap_or_else(|_| usage()),
            ];
            let p = remy::serialize::load(&remy::serialize::asset_path(name)).unwrap_or_else(|e| {
                eprintln!("cannot load {name}: {e}");
                std::process::exit(1);
            });
            let a = p.tree.action_for(&point);
            println!(
                "memory (rec={}, slow={}, send={}, rttr={}) -> {a}",
                point[0], point[1], point[2], point[3]
            );
        }
        _ => usage(),
    }
}
