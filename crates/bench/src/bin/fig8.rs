//! Deprecated shim (one release): forwards to `learnability run tcp_aware`.

fn main() {
    lcc_core::cli::forward(&["run", "tcp_aware"]);
}
