//! Regenerate Fig 8: time-domain queue dynamics against a TCP pulse
//! (TCP cross-traffic on exactly t in [5, 10) seconds).

use lcc_core::experiments::tcp_aware;

fn main() {
    let (naive, aware) = tcp_aware::trained_taos();
    for (p, label) in [(&aware, "TCP-aware"), (&naive, "TCP-naive")] {
        println!("{}", tcp_aware::time_domain(&p.tree, label, 1));
    }
    println!("(paper: the aware protocol queues more in isolation but less against TCP)");
}
