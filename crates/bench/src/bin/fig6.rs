//! Regenerate Figs 5-6 / Table 5: structural knowledge (parking lot).

use lcc_core::experiments::{topology, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", topology::run(fidelity));
}
