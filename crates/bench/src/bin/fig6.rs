//! Deprecated shim (one release): forwards to `learnability run topology`.

fn main() {
    lcc_core::cli::forward(&["run", "topology"]);
}
