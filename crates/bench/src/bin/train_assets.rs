//! Train every Tao protocol the study needs and cache them under
//! `assets/` — the equivalent of the paper's offline Remy runs (which
//! burned a CPU-year per protocol; see DESIGN.md for the budget
//! substitution).
//!
//! Usage: `cargo run --release --bin train_assets [filter]`
//! An optional substring filter trains only matching assets.

use lcc_core::experiments as exp;
use std::time::Instant;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let t0 = Instant::now();
    let step = |name: &str, f: &mut dyn FnMut()| {
        if !filter.is_empty() && !name.contains(&filter) {
            return;
        }
        let s = Instant::now();
        f();
        println!(
            "[{:>7.1}s] {name} ready (+{:.1}s)",
            t0.elapsed().as_secs_f64(),
            s.elapsed().as_secs_f64()
        );
    };

    step("calibration", &mut || {
        exp::calibration::trained_tao();
    });
    step("tcp-aware", &mut || {
        exp::tcp_aware::trained_taos();
    });
    step("link-speed", &mut || {
        exp::link_speed::trained_taos();
    });
    step("rtt", &mut || {
        exp::rtt::trained_taos();
    });
    step("topology", &mut || {
        exp::topology::trained_taos();
    });
    step("multiplexing", &mut || {
        exp::multiplexing::trained_taos();
    });
    step("diversity", &mut || {
        exp::diversity::trained_taos();
    });
    step("signals", &mut || {
        exp::signals::trained_taos();
    });
    println!("all assets ready in {:.1}s", t0.elapsed().as_secs_f64());
}
