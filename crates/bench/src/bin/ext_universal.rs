//! Deprecated shim (one release): forwards to `learnability run universal`.

fn main() {
    lcc_core::cli::forward(&["run", "universal"]);
}
