//! Extension experiment: one Tao protocol trained on the union of the
//! paper's network models, tested across every sweep (the conclusion's
//! open question).

use lcc_core::experiments::{universal, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", universal::run(fidelity));
}
