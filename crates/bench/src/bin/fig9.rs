//! Regenerate Fig 9 / Table 7: the price of sender diversity.

use lcc_core::experiments::{diversity, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", diversity::run(fidelity));
}
