//! Deprecated shim (one release): forwards to `learnability run diversity`.

fn main() {
    lcc_core::cli::forward(&["run", "diversity"]);
}
