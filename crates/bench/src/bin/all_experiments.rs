//! Run every experiment in sequence (the whole evaluation section).
//!
//! `cargo run --release --bin all_experiments` — quick fidelity by
//! default; set `LEARNABILITY_FULL=1` for the full sweeps.

use lcc_core::experiments::{
    calibration, diversity, link_speed, multiplexing, rtt, signals, tcp_aware, topology, Fidelity,
};
use std::time::Instant;

fn main() {
    let fidelity = Fidelity::from_env();
    let t0 = Instant::now();
    macro_rules! run {
        ($name:literal, $e:expr) => {{
            let s = Instant::now();
            println!("{}", $e);
            eprintln!("[{}] done in {:.1}s", $name, s.elapsed().as_secs_f64());
        }};
    }
    run!("fig1", calibration::run(fidelity));
    run!("fig2", link_speed::run(fidelity));
    run!("fig3", multiplexing::run(fidelity));
    run!("fig4", rtt::run(fidelity));
    run!("fig6", topology::run(fidelity));
    run!("fig7", tcp_aware::run(fidelity));
    {
        let (naive, aware) = tcp_aware::trained_taos();
        println!("{}", tcp_aware::time_domain(&aware.tree, "TCP-aware", 1));
        println!("{}", tcp_aware::time_domain(&naive.tree, "TCP-naive", 1));
    }
    run!("fig9", diversity::run(fidelity));
    run!("sig", signals::run(fidelity));
    eprintln!("all experiments in {:.1}s", t0.elapsed().as_secs_f64());
}
