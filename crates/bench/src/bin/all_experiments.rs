//! Deprecated shim (one release): forwards to `learnability run all`.

fn main() {
    lcc_core::cli::forward(&["run", "all"]);
}
