//! Regenerate Fig 3 / Table 3: degree of multiplexing.

use lcc_core::experiments::{multiplexing, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", multiplexing::run(fidelity));
}
