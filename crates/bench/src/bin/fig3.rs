//! Deprecated shim (one release): forwards to `learnability run multiplexing`.

fn main() {
    lcc_core::cli::forward(&["run", "multiplexing"]);
}
