//! Regenerate Fig 1 / Table 1: the calibration experiment.
//!
//! `cargo run --release --bin fig1` (set `LEARNABILITY_FULL=1` for the
//! full-fidelity sweep).

use lcc_core::experiments::{calibration, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", calibration::run(fidelity));
}
