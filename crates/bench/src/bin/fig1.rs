//! Deprecated shim (one release): forwards to `learnability run calibration`.

fn main() {
    lcc_core::cli::forward(&["run", "calibration"]);
}
