//! CI perf-regression gate.
//!
//! Compares a freshly measured `perf_snapshot` JSON against the
//! committed `BENCH_optimizer.json` and fails (non-zero exit) when
//! either tracked number regressed beyond a tolerance factor:
//!
//! * `sim_events_per_sec` — fresh must be ≥ committed / tolerance
//!   (likewise `_dense`, `_receiver_policy` and `_10k`, the
//!   standing-population, delayed-ACK-receiver and Internet-scale
//!   variants of the same measurement)
//! * `sim_allocs_per_event_dense` / `_10k` — fresh must be ≤
//!   committed × tolerance, with a small absolute floor so an
//!   allocation-free committed baseline doesn't make every nonzero
//!   measurement a failure
//! * `smoke_train_wall_s` — fresh must be ≤ committed × tolerance
//! * `genetic_smoke_train_secs` — fresh must be ≤ committed × tolerance
//!   (doubles as CI's genetic smoke-train: the measurement *is* a full
//!   smoke-budget `GeneticTrainer` run)
//!
//! The tolerance defaults to 2× — generous on purpose: shared CI
//! runners are noisy, and the gate exists to catch order-of-magnitude
//! hot-path regressions (an accidental `BTreeMap`, a lost `inline`, a
//! degenerate scheduler width), not 5% jitter.
//!
//! ```sh
//! cargo run --release -p bench --bin perf_snapshot -- --out fresh.json --write
//! cargo run --release -p bench --bin perf_gate -- \
//!     --baseline BENCH_optimizer.json --fresh fresh.json [--tolerance 2.0]
//! ```

use serde_json::Value;
use std::process::ExitCode;

fn num(v: &Value, key: &str) -> Option<f64> {
    match v.get(key)? {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

/// One gated metric: `fresh` regressed iff it is worse than `committed`
/// by more than `tolerance` in the metric's bad direction.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Direction {
    /// Bigger is better (throughput).
    HigherIsBetter,
    /// Smaller is better (wall time).
    LowerIsBetter,
}

fn regressed(committed: f64, fresh: f64, tolerance: f64, dir: Direction) -> bool {
    match dir {
        Direction::HigherIsBetter => fresh < committed / tolerance,
        Direction::LowerIsBetter => fresh > committed * tolerance,
    }
}

/// Absolute floor applied to the committed side of allocs-per-event
/// metrics: the hot path targets ~0 allocations per event, and ratio
/// tolerance against a near-zero committed value would flag noise-level
/// growth (0.0001 → 0.0003) as a 3× regression.
const ALLOC_PER_EVENT_FLOOR: f64 = 0.01;

fn check(
    name: &str,
    baseline: &Value,
    fresh: &Value,
    tolerance: f64,
    dir: Direction,
) -> Result<(), String> {
    let mut committed =
        num(baseline, name).ok_or_else(|| format!("baseline JSON lacks numeric `{name}`"))?;
    if name.starts_with("sim_allocs_per_event") {
        committed = committed.max(ALLOC_PER_EVENT_FLOOR);
    }
    let measured = num(fresh, name).ok_or_else(|| format!("fresh JSON lacks numeric `{name}`"))?;
    let ratio = measured / committed;
    let verdict = if regressed(committed, measured, tolerance, dir) {
        "REGRESSED"
    } else {
        "ok"
    };
    eprintln!(
        "[gate] {name}: committed {committed:.3e}, fresh {measured:.3e} ({ratio:.2}x) .. {verdict}"
    );
    if verdict == "REGRESSED" {
        return Err(format!(
            "{name} regressed beyond {tolerance}x tolerance: committed {committed:.3e}, fresh {measured:.3e}"
        ));
    }
    Ok(())
}

/// Minimum acceptable calendar/heap throughput ratio within one run on
/// the sparse 4-sender dumbbell. The calendar backend exists to beat the
/// heap; allow modest slack for scheduling jitter, but a default backend
/// at half the reference's speed is a degenerated self-tuning path,
/// whatever the hardware.
const MIN_BACKEND_RATIO: f64 = 0.75;

/// Minimum calendar/heap ratio on the *dense* dumbbell — thousands of
/// standing events, the O(1)-vs-O(log n) regime the calendar queue is
/// built for. No slack here: if the default backend can't at least match
/// the heap where the heap pays log-depth sift costs, the bucket tuning
/// (or the today-buffer tie path) has degenerated.
const MIN_DENSE_BACKEND_RATIO: f64 = 1.0;

fn backend_ratio(
    fresh: &Value,
    calendar_key: &str,
    heap_key: &str,
    floor: f64,
) -> Result<(), String> {
    let calendar =
        num(fresh, calendar_key).ok_or(format!("fresh JSON lacks numeric `{calendar_key}`"))?;
    let heap = num(fresh, heap_key).ok_or(format!("fresh JSON lacks numeric `{heap_key}`"))?;
    let ratio = calendar / heap;
    let ok = ratio >= floor;
    eprintln!(
        "[gate] {calendar_key}/{heap_key} (same run): {ratio:.2}x .. {}",
        if ok { "ok" } else { "REGRESSED" }
    );
    if ok {
        Ok(())
    } else {
        Err(format!(
            "default scheduler degenerated: {calendar_key} {calendar:.3e} ev/s is only \
             {ratio:.2}x of {heap_key} {heap:.3e} ev/s measured in the same run (floor {floor})"
        ))
    }
}

fn check_backend_ratio(fresh: &Value) -> Result<(), String> {
    backend_ratio(
        fresh,
        "sim_events_per_sec",
        "sim_events_per_sec_heap",
        MIN_BACKEND_RATIO,
    )
}

fn check_dense_backend_ratio(fresh: &Value) -> Result<(), String> {
    backend_ratio(
        fresh,
        "sim_events_per_sec_dense",
        "sim_events_per_sec_dense_heap",
        MIN_DENSE_BACKEND_RATIO,
    )
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_gate: {path} is not JSON: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_optimizer.json".to_string());
    let fresh_path = arg_value(&args, "--fresh").expect("perf_gate: --fresh <snapshot.json>");
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|t| t.parse().expect("perf_gate: bad --tolerance"))
        .unwrap_or(2.0);
    assert!(tolerance >= 1.0, "tolerance must be >= 1.0");

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);

    let mut failures = Vec::new();
    for (name, dir) in [
        ("sim_events_per_sec", Direction::HigherIsBetter),
        ("sim_events_per_sec_dense", Direction::HigherIsBetter),
        (
            "sim_events_per_sec_receiver_policy",
            Direction::HigherIsBetter,
        ),
        ("sim_events_per_sec_10k", Direction::HigherIsBetter),
        ("sim_allocs_per_event_dense", Direction::LowerIsBetter),
        ("sim_allocs_per_event_10k", Direction::LowerIsBetter),
        ("smoke_train_wall_s", Direction::LowerIsBetter),
        ("genetic_smoke_train_secs", Direction::LowerIsBetter),
    ] {
        if let Err(e) = check(name, &baseline, &fresh, tolerance, dir) {
            failures.push(e);
        }
    }
    // Hardware-independent cross-check: both backends were measured in
    // the *same* fresh run, so the calendar/heap ratio carries no
    // machine-speed noise. The default calendar backend falling well
    // below the heap reference means its self-tuning degenerated — the
    // exact regression the absolute numbers could mask on a runner
    // faster than the committed baseline's machine.
    if let Err(e) = check_backend_ratio(&fresh) {
        failures.push(e);
    }
    if let Err(e) = check_dense_backend_ratio(&fresh) {
        failures.push(e);
    }
    if failures.is_empty() {
        eprintln!("[gate] perf within {tolerance}x of {baseline_path}");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("[gate] FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, f64)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), Value::F64(*v)))
                .collect(),
        )
    }

    #[test]
    fn throughput_regression_is_caught() {
        assert!(regressed(6e6, 2.9e6, 2.0, Direction::HigherIsBetter));
        assert!(!regressed(6e6, 3.1e6, 2.0, Direction::HigherIsBetter));
        assert!(
            !regressed(6e6, 9e6, 2.0, Direction::HigherIsBetter),
            "improvement passes"
        );
    }

    #[test]
    fn walltime_regression_is_caught() {
        assert!(regressed(2.0, 4.1, 2.0, Direction::LowerIsBetter));
        assert!(!regressed(2.0, 3.9, 2.0, Direction::LowerIsBetter));
        assert!(
            !regressed(2.0, 1.0, 2.0, Direction::LowerIsBetter),
            "improvement passes"
        );
    }

    #[test]
    fn check_reads_both_documents() {
        let base = obj(&[("sim_events_per_sec", 6e6), ("smoke_train_wall_s", 2.0)]);
        let fresh_ok = obj(&[("sim_events_per_sec", 5e6), ("smoke_train_wall_s", 2.5)]);
        let fresh_bad = obj(&[("sim_events_per_sec", 1e6), ("smoke_train_wall_s", 2.5)]);
        assert!(check(
            "sim_events_per_sec",
            &base,
            &fresh_ok,
            2.0,
            Direction::HigherIsBetter
        )
        .is_ok());
        assert!(check(
            "sim_events_per_sec",
            &base,
            &fresh_bad,
            2.0,
            Direction::HigherIsBetter
        )
        .is_err());
        assert!(
            check("missing", &base, &fresh_ok, 2.0, Direction::HigherIsBetter).is_err(),
            "absent keys fail loudly rather than silently passing"
        );
    }

    #[test]
    fn backend_ratio_catches_degenerate_calendar() {
        let ok = obj(&[
            ("sim_events_per_sec", 14e6),
            ("sim_events_per_sec_heap", 8e6),
        ]);
        assert!(check_backend_ratio(&ok).is_ok());
        let marginal = obj(&[
            ("sim_events_per_sec", 6.5e6),
            ("sim_events_per_sec_heap", 8e6),
        ]);
        assert!(check_backend_ratio(&marginal).is_ok(), "slack for jitter");
        let degenerate = obj(&[
            ("sim_events_per_sec", 1e6),
            ("sim_events_per_sec_heap", 8e6),
        ]);
        assert!(check_backend_ratio(&degenerate).is_err());
        let missing = obj(&[("sim_events_per_sec", 14e6)]);
        assert!(check_backend_ratio(&missing).is_err(), "absent key fails");
    }

    #[test]
    fn dense_ratio_requires_calendar_at_least_heap() {
        let wins = obj(&[
            ("sim_events_per_sec_dense", 6.7e6),
            ("sim_events_per_sec_dense_heap", 5.4e6),
        ]);
        assert!(check_dense_backend_ratio(&wins).is_ok());
        let ties = obj(&[
            ("sim_events_per_sec_dense", 5.4e6),
            ("sim_events_per_sec_dense_heap", 5.4e6),
        ]);
        assert!(
            check_dense_backend_ratio(&ties).is_ok(),
            "1.0x is the floor"
        );
        let loses = obj(&[
            ("sim_events_per_sec_dense", 5.3e6),
            ("sim_events_per_sec_dense_heap", 5.4e6),
        ]);
        assert!(
            check_dense_backend_ratio(&loses).is_err(),
            "no sub-heap slack in the dense regime"
        );
    }

    #[test]
    fn alloc_metrics_get_an_absolute_floor() {
        // Committed near-zero: noise-level fresh values must pass ...
        let base = obj(&[("sim_allocs_per_event_dense", 1e-4)]);
        let noise = obj(&[("sim_allocs_per_event_dense", 8e-4)]);
        assert!(check(
            "sim_allocs_per_event_dense",
            &base,
            &noise,
            2.0,
            Direction::LowerIsBetter
        )
        .is_ok());
        // ... but a real per-event allocation (>= one alloc per ~20
        // events) is still far above floor x tolerance and fails.
        let real = obj(&[("sim_allocs_per_event_dense", 0.05)]);
        assert!(check(
            "sim_allocs_per_event_dense",
            &base,
            &real,
            2.0,
            Direction::LowerIsBetter
        )
        .is_err());
    }

    #[test]
    fn integer_valued_snapshots_parse() {
        let base = Value::Object(vec![(
            "sim_events_per_sec".to_string(),
            Value::U64(6_000_000),
        )]);
        assert_eq!(num(&base, "sim_events_per_sec"), Some(6e6));
    }
}
