//! Perf snapshot: measures the two numbers every optimization PR cares
//! about and writes them to `BENCH_optimizer.json` so the repo keeps a
//! perf trajectory across PRs.
//!
//! * `smoke_train_wall_s` — wall time of one `OptimizerConfig::smoke()`
//!   training run on the calibration scenario (the Remy inner loop).
//! * `genetic_smoke_train_secs` — wall time of one smoke-budget
//!   `GeneticTrainer` run on the same scenario (the population-search
//!   trainer's inner loop: per-generation batch evaluation plus
//!   genome mutation).
//! * `sim_events_per_sec` — event throughput of a fixed 4-sender dumbbell
//!   simulation (the netsim hot path), single-threaded, on the default
//!   scheduler backend (the bucketed calendar queue). The same dumbbell
//!   is also timed on the `BinaryHeap` reference backend and reported as
//!   `sim_events_per_sec_heap`, keeping the backend gap visible in the
//!   perf trajectory.
//! * `sim_events_per_sec_dense` (+ `_dense_heap`) — the same measurement
//!   on a 64-sender fat-pipe dumbbell holding several thousand standing
//!   events, the regime where the calendar queue's bucket scans dominate:
//!   this is the number the key/payload bucket split (keys scanned
//!   densely, event payloads untouched) is accountable to.
//! * `sim_events_per_sec_receiver_policy` — the dense dumbbell again, but
//!   with every flow behind a delayed-ACK receiver (`ack_every = 4` plus
//!   a flush timer), so the receiver state machines and the `AckTimer`
//!   arm/cancel path are on the measured hot path.
//! * `sim_events_per_sec_10k` — the `many_flows` experiment's incast
//!   cell: 10⁴ M/G/∞ churn slots into a 400 Mbps / 4 ms bottleneck.
//!   This is the Internet-scale regime the packet arena, the transport
//!   pre-sizing and the calendar today-buffer are accountable to.
//! * `sim_allocs_per_event_dense` / `sim_allocs_per_event_10k` — heap
//!   allocations per processed event during the corresponding runs,
//!   counted by a wrapping global allocator. The hot path is designed to
//!   be allocation-free at steady state (the event arena recycles slots,
//!   per-flow maps are pre-sized from the BDP), so the only allocations
//!   left are one-time growth to peak population — amortized to ~0 per
//!   event. A creeping per-event allocation shows up here long before it
//!   shows up in events/sec on a fast machine.
//!
//! ```sh
//! cargo run --release -p bench --bin perf_snapshot            # print only
//! cargo run --release -p bench --bin perf_snapshot -- --write # update BENCH_optimizer.json
//! ```

use netsim::prelude::*;
use netsim::rng::SimRng;
use protocols::{Action, TaoCc, WhiskerTree};
use remy::{
    EvalPool, GeneticTrainer, Optimizer, OptimizerConfig, ScenarioSpec, TrainBudget, Trainer,
};
use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Global allocator wrapper that counts every heap allocation (one
/// relaxed atomic add per alloc — unmeasurable against a real malloc).
/// Snapshotting the counter around `Simulation::run` yields the
/// allocations-per-event metrics.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; only adds counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Repetitions of the smoke training run (median reported).
const TRAIN_REPS: usize = 3;

fn time_smoke_training() -> f64 {
    let mut samples = Vec::with_capacity(TRAIN_REPS);
    for _ in 0..TRAIN_REPS {
        let mut cfg = OptimizerConfig::smoke();
        cfg.seed = 7;
        let opt = Optimizer::new(vec![ScenarioSpec::calibration()], cfg);
        let start = Instant::now();
        let trained = opt.optimize("perf-snapshot");
        let dt = start.elapsed().as_secs_f64();
        assert!(trained.score.is_finite(), "training degenerated");
        samples.push(dt);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn time_genetic_smoke_training() -> f64 {
    let mut samples = Vec::with_capacity(TRAIN_REPS);
    for _ in 0..TRAIN_REPS {
        let mut budget = TrainBudget::smoke();
        budget.seed = 7;
        let trainer = GeneticTrainer::new(budget.clone());
        let pool = Arc::new(EvalPool::new(budget.threads));
        let specs = vec![ScenarioSpec::calibration()];
        let start = Instant::now();
        let trained = trainer.train(
            "perf-snapshot-genetic",
            &specs,
            &pool,
            &mut SimRng::from_seed(7),
        );
        let dt = start.elapsed().as_secs_f64();
        assert!(trained.score.is_finite(), "genetic training degenerated");
        samples.push(dt);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn sim_events_per_sec(scheduler: SchedulerKind) -> f64 {
    // Fixed dumbbell: 4 Tao senders with a mildly aggressive uniform
    // action on a 40 Mbps / 100 ms RTT bottleneck — enough load to keep
    // the queue busy and the ack clock dense.
    let net = dumbbell(
        4,
        40e6,
        0.100,
        QueueSpec::drop_tail_bdp(40e6, 0.100, 5.0),
        WorkloadSpec::AlwaysOn,
    );
    let tree = WhiskerTree::uniform(Action::new(1.0, 1.0, 0.2));
    let protocols: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..4)
        .map(|i| {
            Box::new(TaoCc::new(tree.clone(), format!("tao{i}")))
                as Box<dyn netsim::transport::CongestionControl>
        })
        .collect();
    let mut sim = Simulation::with_scheduler(&net, protocols, 42, scheduler);
    let start = Instant::now();
    let out = sim.run(SimDuration::from_secs(30));
    let dt = start.elapsed().as_secs_f64();
    out.events_processed as f64 / dt
}

/// Fixed-window protocol for the dense-population scenario (window-
/// clocked, no pacing: every in-flight packet keeps events pending).
struct FixedWindow(f64);

impl netsim::transport::CongestionControl for FixedWindow {
    fn reset(&mut self, _: SimTime) {}
    fn on_ack(&mut self, _: SimTime, _: &Ack, _: &netsim::transport::AckInfo) {}
    fn on_loss(&mut self, _: SimTime) {}
    fn on_timeout(&mut self, _: SimTime) {}
    fn window(&self) -> f64 {
        self.0
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "fixed".into()
    }
}

/// The dense 64-sender fat-pipe dumbbell; `receiver` optionally puts
/// every flow behind an endpoint policy.
fn dense_net(receiver: Option<ReceiverSpec>) -> NetworkConfig {
    // 64 windows of 256 packets over a 400 Mbps / 200 ms pipe: thousands
    // of propagation and ack events stand in the queue at all times, so
    // per-pop bucket-scan cost (not retune churn) dominates.
    let net = dumbbell(
        64,
        400e6,
        0.200,
        QueueSpec::infinite(),
        WorkloadSpec::AlwaysOn,
    );
    match receiver {
        Some(spec) => net.with_receiver(spec),
        None => net,
    }
}

/// Runs `net` to completion and returns `(events/sec, allocs/event)`,
/// counting only allocations made *during* the run — construction-time
/// allocation (transports, queues, scheduler) is deliberately excluded
/// so the metric isolates the hot path.
fn run_counted(
    net: &NetworkConfig,
    protocols: Vec<Box<dyn netsim::transport::CongestionControl>>,
    scheduler: SchedulerKind,
    secs: u64,
) -> (f64, f64) {
    let mut sim = Simulation::with_scheduler(net, protocols, 42, scheduler);
    let allocs_before = allocs_now();
    let start = Instant::now();
    let out = sim.run(SimDuration::from_secs(secs));
    let dt = start.elapsed().as_secs_f64();
    let allocs = (allocs_now() - allocs_before) as f64;
    (
        out.events_processed as f64 / dt,
        allocs / out.events_processed as f64,
    )
}

fn run_dense(net: &NetworkConfig, scheduler: SchedulerKind) -> (f64, f64) {
    let protocols: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..64)
        .map(|_| Box::new(FixedWindow(256.0)) as Box<dyn netsim::transport::CongestionControl>)
        .collect();
    run_counted(net, protocols, scheduler, 10)
}

fn sim_events_per_sec_dense(scheduler: SchedulerKind) -> (f64, f64) {
    run_dense(&dense_net(None), scheduler)
}

/// The Internet-scale cell: the `many_flows` experiment's 10⁴-slot
/// incast under Cubic (the cheapest real scheme — the measurement is of
/// the engine, not the controller).
fn sim_events_per_sec_10k() -> (f64, f64) {
    let net = lcc_core::experiments::many_flows::incast(10_000);
    let protocols: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..10_000)
        .map(|_| Box::new(protocols::Cubic::new()) as Box<dyn netsim::transport::CongestionControl>)
        .collect();
    run_counted(&net, protocols, SchedulerKind::Calendar, 10)
}

fn sim_events_per_sec_receiver_policy(scheduler: SchedulerKind) -> f64 {
    // Same dense scenario, every receiver coalescing 4:1 with a 40 ms
    // flush timer: the ack-every-k bookkeeping and the AckTimer
    // arm/fire/cancel chain run on every delivery.
    run_dense(&dense_net(Some(ReceiverSpec::delayed(4, 0.040))), scheduler).0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_optimizer.json")
        .to_string();

    eprintln!("[perf] timing smoke training ({TRAIN_REPS} reps)...");
    let train_s = time_smoke_training();
    eprintln!("[perf] smoke training: {train_s:.3} s");

    eprintln!("[perf] timing genetic smoke training ({TRAIN_REPS} reps)...");
    let genetic_train_s = time_genetic_smoke_training();
    eprintln!("[perf] genetic smoke training: {genetic_train_s:.3} s");

    eprintln!("[perf] timing dumbbell simulation (calendar backend)...");
    let eps = sim_events_per_sec(SchedulerKind::Calendar);
    eprintln!("[perf] simulator/calendar: {eps:.0} events/s");

    eprintln!("[perf] timing dumbbell simulation (heap backend)...");
    let eps_heap = sim_events_per_sec(SchedulerKind::Heap);
    eprintln!("[perf] simulator/heap: {eps_heap:.0} events/s");

    eprintln!("[perf] timing dense-population dumbbell (calendar backend)...");
    let (eps_dense, allocs_dense) = sim_events_per_sec_dense(SchedulerKind::Calendar);
    eprintln!(
        "[perf] simulator-dense/calendar: {eps_dense:.0} events/s, \
         {allocs_dense:.5} allocs/event"
    );

    eprintln!("[perf] timing dense-population dumbbell (heap backend)...");
    let (eps_dense_heap, _) = sim_events_per_sec_dense(SchedulerKind::Heap);
    eprintln!("[perf] simulator-dense/heap: {eps_dense_heap:.0} events/s");

    eprintln!("[perf] timing dense dumbbell with delayed-ACK receivers...");
    let eps_receiver = sim_events_per_sec_receiver_policy(SchedulerKind::Calendar);
    eprintln!("[perf] simulator-receiver-policy: {eps_receiver:.0} events/s");

    eprintln!("[perf] timing 10k-flow incast (many_flows cell, calendar backend)...");
    let (eps_10k, allocs_10k) = sim_events_per_sec_10k();
    eprintln!(
        "[perf] simulator-10k/calendar: {eps_10k:.0} events/s, \
         {allocs_10k:.5} allocs/event"
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Preserve a recorded baseline (pre-refactor numbers) if one exists.
    let baseline = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .and_then(|v| v.get("baseline").cloned());

    let mut obj = vec![
        ("smoke_train_wall_s".to_string(), Value::F64(train_s)),
        (
            "genetic_smoke_train_secs".to_string(),
            Value::F64(genetic_train_s),
        ),
        ("sim_events_per_sec".to_string(), Value::F64(eps)),
        ("sim_events_per_sec_heap".to_string(), Value::F64(eps_heap)),
        (
            "sim_events_per_sec_dense".to_string(),
            Value::F64(eps_dense),
        ),
        (
            "sim_events_per_sec_dense_heap".to_string(),
            Value::F64(eps_dense_heap),
        ),
        (
            "sim_events_per_sec_receiver_policy".to_string(),
            Value::F64(eps_receiver),
        ),
        ("sim_events_per_sec_10k".to_string(), Value::F64(eps_10k)),
        (
            "sim_allocs_per_event_dense".to_string(),
            Value::F64(allocs_dense),
        ),
        (
            "sim_allocs_per_event_10k".to_string(),
            Value::F64(allocs_10k),
        ),
        ("scheduler".to_string(), Value::Str("calendar".to_string())),
        ("threads".to_string(), Value::U64(threads as u64)),
        (
            "bench".to_string(),
            Value::Str(
                "perf_snapshot: OptimizerConfig::smoke() on calibration (tree and genetic \
                 trainers); 4-Tao dumbbell 30 s \
                 (sim_events_per_sec = default calendar scheduler, _heap = BinaryHeap \
                 reference); _dense = 64x256-window fat-pipe dumbbell 10 s (standing \
                 event population in the thousands); _receiver_policy = the dense \
                 dumbbell with ack-every-4 delayed-ACK receivers (40 ms flush timer); \
                 _10k = the many_flows incast cell (10^4 M/G/inf churn slots, Cubic) \
                 10 s; sim_allocs_per_event_* = heap allocations per processed event \
                 during the run (counting global allocator, construction excluded)"
                    .to_string(),
            ),
        ),
    ];
    if let Some(b) = baseline {
        obj.push(("baseline".to_string(), b));
    }
    let doc = Value::Object(obj);
    let json = serde_json::to_string_pretty(&doc).expect("snapshot serializes");
    println!("{json}");
    if write {
        std::fs::write(&out_path, json + "\n").expect("write BENCH_optimizer.json");
        eprintln!("[perf] wrote {out_path}");
    }
}
