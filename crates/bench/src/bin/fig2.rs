//! Regenerate Fig 2 / Table 2: operating range in link speed.

use lcc_core::experiments::{link_speed, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    println!("{}", link_speed::run(fidelity));
}
