//! Deprecated shim (one release): forwards to `learnability run link_speed`.

fn main() {
    lcc_core::cli::forward(&["run", "link_speed"]);
}
