//! Benchmarks of the Remy protocol-design tool: scenario evaluation
//! throughput, parallel scaling, and ablations of the design choices
//! DESIGN.md calls out (hill-climb step scales; whisker-tree depth on the
//! execution hot path is covered in `simulator.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocols::WhiskerTree;
use remy::{
    draw_scenarios, evaluate_scenarios, EvalConfig, Optimizer, OptimizerConfig, ScenarioSpec,
};

fn eval_cfg(threads: usize) -> EvalConfig {
    EvalConfig {
        sim_duration_s: 4.0,
        event_budget: 5_000_000,
        threads,
        ..Default::default()
    }
}

fn bench_evaluation_scaling(c: &mut Criterion) {
    let specs = [ScenarioSpec::calibration()];
    let scenarios = draw_scenarios(&specs, 8, 42);
    let tree = WhiskerTree::default_tree();
    let mut g = c.benchmark_group("optimizer/eval-threads");
    g.sample_size(10);
    for threads in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = eval_cfg(t);
            b.iter(|| evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg));
        });
    }
    g.finish();
}

fn bench_evaluation_by_spec(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer/eval-spec");
    g.sample_size(10);
    for (label, spec) in [
        ("calibration", ScenarioSpec::calibration()),
        (
            "mux-100",
            ScenarioSpec::multiplexing(100, remy::BufferSpec::BdpMultiple(5.0)),
        ),
        ("parking-lot", ScenarioSpec::two_bottleneck_model()),
    ] {
        let scenarios = draw_scenarios(std::slice::from_ref(&spec), 4, 7);
        let tree = WhiskerTree::default_tree();
        g.bench_function(label, |b| {
            let cfg = eval_cfg(0);
            b.iter(|| evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg));
        });
    }
    g.finish();
}

/// Ablation: coarse-to-fine step scales vs fine-only hill climbing.
/// Coarse steps should reach a comparable score in less wall time; this
/// bench records the cost side (the score side is asserted in tests).
fn bench_hill_climb_scales(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer/step-scales");
    g.sample_size(10);
    for (label, scales) in [("coarse-to-fine", vec![4.0, 1.0]), ("fine-only", vec![1.0])] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = OptimizerConfig {
                    draws_per_eval: 2,
                    sim_duration_s: 3.0,
                    rounds: 1,
                    max_leaves: 1,
                    scales: scales.clone(),
                    threads: 0,
                    seed: 9,
                    event_budget: 2_000_000,
                    masks: Vec::new(),
                    scheduler: Default::default(),
                    verbose: false,
                };
                Optimizer::new(vec![ScenarioSpec::calibration()], cfg).optimize("bench")
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_evaluation_scaling,
    bench_evaluation_by_spec,
    bench_hill_climb_scales
);
criterion_main!(benches);
