//! Microbenchmarks of the simulation substrate: event throughput per
//! protocol, multi-hop routing, queue disciplines, and the whisker-tree
//! lookup on the executor's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::codel::{Codel, CodelParams};
use netsim::prelude::*;
use netsim::queue::{DropTail, QueueDiscipline, QueuedPacket};
use netsim::sfq_codel::SfqCodel;
use protocols::{Action, Cubic, NewReno, TaoCc, WhiskerTree};

fn dumbbell_net(n: usize) -> NetworkConfig {
    dumbbell(
        n,
        20e6,
        0.100,
        QueueSpec::drop_tail_bdp(20e6, 0.100, 5.0),
        WorkloadSpec::AlwaysOn,
    )
}

fn bench_engine_by_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/protocol");
    g.sample_size(10);
    let secs = 3.0;
    for proto in ["cubic", "newreno", "tao"] {
        g.bench_with_input(BenchmarkId::from_parameter(proto), &proto, |b, &p| {
            let net = dumbbell_net(2);
            b.iter(|| {
                let ccs: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..2)
                    .map(|_| -> Box<dyn netsim::transport::CongestionControl> {
                        match p {
                            "cubic" => Box::new(Cubic::new()),
                            "newreno" => Box::new(NewReno::new()),
                            _ => Box::new(TaoCc::new(
                                WhiskerTree::uniform(Action::new(0.99, 1.0, 0.4)),
                                "tao",
                            )),
                        }
                    })
                    .collect();
                let mut sim = Simulation::new(&net, ccs, 1);
                sim.run(SimDuration::from_secs_f64(secs))
            });
        });
    }
    g.finish();
}

fn bench_engine_by_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/scheduler");
    g.sample_size(10);
    for (label, kind) in [
        ("heap", SchedulerKind::Heap),
        ("calendar", SchedulerKind::Calendar),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            // Same fixed dumbbell perf_snapshot tracks, shortened.
            let net = dumbbell(
                4,
                40e6,
                0.100,
                QueueSpec::drop_tail_bdp(40e6, 0.100, 5.0),
                WorkloadSpec::AlwaysOn,
            );
            b.iter(|| {
                let tree = WhiskerTree::uniform(Action::new(1.0, 1.0, 0.2));
                let ccs: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..4)
                    .map(|_| -> Box<dyn netsim::transport::CongestionControl> {
                        Box::new(TaoCc::new(tree.clone(), "tao"))
                    })
                    .collect();
                let mut sim = Simulation::with_scheduler(&net, ccs, 42, kind);
                sim.run(SimDuration::from_secs(3))
            });
        });
    }
    g.finish();
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/senders");
    g.sample_size(10);
    for n in [1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let net = dumbbell(
                n,
                15e6,
                0.150,
                QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
                WorkloadSpec::on_off_1s(),
            );
            b.iter(|| {
                let ccs: Vec<Box<dyn netsim::transport::CongestionControl>> = (0..n)
                    .map(|_| -> Box<dyn netsim::transport::CongestionControl> {
                        Box::new(NewReno::new())
                    })
                    .collect();
                let mut sim = Simulation::new(&net, ccs, 7);
                sim.run(SimDuration::from_secs(3))
            });
        });
    }
    g.finish();
}

fn mk_pkt(flow: u32, seq: u64) -> QueuedPacket {
    QueuedPacket {
        pkt: netsim::packet::Packet::data(
            netsim::packet::FlowId(flow),
            seq,
            0,
            SimTime::ZERO,
            seq,
            false,
        ),
        enqueued_at: SimTime::ZERO,
    }
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues/enqueue-dequeue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("droptail", |b| {
        b.iter(|| {
            let mut q = DropTail::new(Some(1 << 24));
            for i in 0..n {
                q.enqueue(mk_pkt((i % 16) as u32, i), SimTime::ZERO);
            }
            while q.dequeue(SimTime::ZERO).is_some() {}
        });
    });
    g.bench_function("codel", |b| {
        b.iter(|| {
            let mut q = Codel::new(CodelParams::default());
            for i in 0..n {
                q.push(mk_pkt((i % 16) as u32, i));
            }
            let t = SimTime::from_secs_f64(0.001);
            while q.dequeue(t).is_some() {}
        });
    });
    g.bench_function("sfqcodel", |b| {
        b.iter(|| {
            let mut q = SfqCodel::new(1 << 24, CodelParams::default(), 1024, 99);
            for i in 0..n {
                q.enqueue(mk_pkt((i % 16) as u32, i), SimTime::ZERO);
            }
            let t = SimTime::from_secs_f64(0.001);
            while q.dequeue(t).is_some() {}
        });
    });
    g.finish();
}

fn bench_whisker_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("whisker/lookup");
    for leaves in [1usize, 8, 64] {
        // build a tree with `leaves` leaves via repeated splits
        let mut tree = WhiskerTree::default_tree();
        let mut i = 0;
        while tree.num_leaves() < leaves {
            let id = protocols::LeafId(i % tree.num_leaves());
            tree.split_leaf(id, i % protocols::NUM_SIGNALS);
            i += 1;
        }
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::from_parameter(leaves), &tree, |b, tree| {
            let points: Vec<[f64; 4]> = (0..1000)
                .map(|k| {
                    let k = k as f64;
                    [
                        (k * 7.3) % 4000.0,
                        (k * 13.7) % 4000.0,
                        (k * 3.1) % 4000.0,
                        (k * 0.11) % 64.0,
                    ]
                })
                .collect();
            b.iter(|| {
                let mut acc = 0.0;
                for p in &points {
                    acc += tree.action_for(p).window_increment;
                }
                acc
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine_by_protocol,
    bench_engine_by_scheduler,
    bench_engine_scaling,
    bench_queues,
    bench_whisker_lookup
);
criterion_main!(benches);
