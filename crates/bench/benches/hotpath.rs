//! Benchmarks of the training hot path introduced by the compiled-tree +
//! persistent-pool refactor: per-lookup cost of the flattened arena vs
//! the recursive boxed tree, flat usage accounting, and end-to-end
//! evaluation through a persistent [`EvalPool`].

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::calendar::CalendarQueue;
use netsim::event::{BinaryHeapScheduler, Event, Scheduler};
use netsim::packet::FlowId;
use netsim::time::{SimDuration, SimTime};
use protocols::whisker::MemoryRange;
use protocols::{Action, CompiledTree, LeafId, UsageCounts, WhiskerTree};
use remy::{draw_scenarios, EvalConfig, EvalPool, ScenarioSpec};

/// A tree with `leaves` whiskers produced by round-robin splitting, with
/// distinct per-leaf actions.
fn tree_with_leaves(leaves: usize) -> WhiskerTree {
    let mut tree = WhiskerTree::default_tree();
    let mut i = 0usize;
    while tree.num_leaves() < leaves {
        let n = tree.num_leaves();
        tree.split_leaf(LeafId(i % n), i % 4);
        i += 1;
    }
    for l in 0..tree.num_leaves() {
        tree.set_leaf_action(
            LeafId(l),
            Action::new(1.0, 1.0 + l as f64 * 0.5, 0.25 + l as f64 * 0.05),
        );
    }
    tree
}

fn probe_points(n: usize) -> Vec<[f64; 4]> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            [
                (f * 37.0) % 4000.0,
                (f * 101.0) % 4000.0,
                (f * 13.0) % 4000.0,
                (f * 7.0) % 64.0,
            ]
        })
        .collect()
}

fn bench_tree_lookup(c: &mut Criterion) {
    let probes = probe_points(1024);
    for leaves in [4usize, 16, 64] {
        let tree = tree_with_leaves(leaves);
        let compiled = CompiledTree::compile(&tree);
        let mut g = c.benchmark_group(format!("hotpath/lookup-{leaves}-leaves"));
        g.sample_size(50);
        g.throughput(Throughput::Elements(probes.len() as u64));
        g.bench_function("recursive", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in &probes {
                    acc += tree.action_for(black_box(p)).window_increment;
                }
                acc
            });
        });
        g.bench_function("compiled", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in &probes {
                    acc += compiled.action_for(black_box(p)).window_increment;
                }
                acc
            });
        });
        g.bench_function("compiled-with-usage", |b| {
            let mut usage = UsageCounts::new(compiled.num_leaves());
            b.iter(|| {
                let mut acc = 0.0;
                for p in &probes {
                    let clamped = MemoryRange::clamp_point(black_box(p));
                    let leaf = compiled.lookup_clamped(&clamped);
                    usage.record(leaf, &clamped);
                    acc += compiled.action(leaf).window_increment;
                }
                acc
            });
        });
        g.finish();
    }
}

fn bench_pool_evaluation(c: &mut Criterion) {
    let specs = [ScenarioSpec::calibration()];
    let scenarios = draw_scenarios(&specs, 4, 7);
    let tree = tree_with_leaves(8);
    let cfg = EvalConfig {
        sim_duration_s: 3.0,
        event_budget: 4_000_000,
        threads: 0,
        ..Default::default()
    };
    let mut g = c.benchmark_group("hotpath/pool-evaluate");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool = EvalPool::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| pool.evaluate(&scenarios, std::slice::from_ref(&tree), &cfg));
        });
    }
    g.finish();
}

/// Hold-and-churn scheduler workload shaped like the simulator's: a
/// standing population of `held` events, each pop followed by a push a
/// pseudo-exponential gap ahead, with every 64th push a far-future
/// RTO-style timer. Returns a checksum so the work can't be elided.
fn churn<S: Scheduler>(q: &mut S, held: usize, ops: usize) -> u64 {
    let mut seq = 0u64;
    let mut x = 0x9E3779B97F4A7C15u64; // splitmix-ish LCG stream
    let mut next_time = |now: u64, seq: u64| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if seq % 64 == 63 {
            now + 1_000_000_000 + x % 3_000_000_000 // RTO-style timer
        } else {
            now + 1 + (x % 600_000) // ~0.3 ms mean event spacing
        }
    };
    for _ in 0..held {
        q.insert(SimTime::from_nanos(next_time(0, seq)), seq, wake(seq));
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let e = q.pop().expect("standing population");
        let now = e.at.as_nanos();
        acc = acc.wrapping_add(now).wrapping_add(e.seq);
        q.insert(SimTime::from_nanos(next_time(now, seq)), seq, wake(seq));
        seq += 1;
    }
    acc
}

fn wake(seq: u64) -> Event {
    Event::SenderWake {
        flow: FlowId(seq as u32),
    }
}

fn bench_scheduler_churn(c: &mut Criterion) {
    let ops = 100_000usize;
    for held in [64usize, 1024, 16_384] {
        let mut g = c.benchmark_group(format!("hotpath/scheduler-{held}-held"));
        g.sample_size(20);
        g.throughput(Throughput::Elements(ops as u64));
        g.bench_function("heap", |b| {
            b.iter(|| {
                let mut q = BinaryHeapScheduler::new();
                black_box(churn(&mut q, held, ops))
            });
        });
        g.bench_function("calendar", |b| {
            b.iter(|| {
                let mut q = CalendarQueue::with_width_hint(SimDuration::from_micros(300));
                black_box(churn(&mut q, held, ops))
            });
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_tree_lookup,
    bench_pool_evaluation,
    bench_scheduler_churn
);
criterion_main!(benches);
