//! One benchmark per paper figure/table: each runs a scaled-down slice of
//! the corresponding experiment end to end (trained asset → testing
//! scenario → metric), so `cargo bench` exercises every reproduction
//! path and tracks its cost. Full regenerations are the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use lcc_core::experiments::{
    calibration, diversity, link_speed, multiplexing, rtt, tcp_aware, topology,
};
use lcc_core::{run_homogeneous, run_mix, with_sfq_codel, Scheme};
use netsim::prelude::*;

const BENCH_SECS: f64 = 5.0;

fn bench_fig1_calibration(c: &mut Criterion) {
    let tao = calibration::trained_tao();
    let net = calibration::test_network();
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("tao-on-calibration-network", |b| {
        let s = Scheme::tao(tao.tree.clone(), "tao");
        b.iter(|| run_homogeneous(&net, &s, 1, BENCH_SECS));
    });
    g.bench_function("cubic-on-calibration-network", |b| {
        b.iter(|| run_homogeneous(&net, &Scheme::Cubic, 1, BENCH_SECS));
    });
    g.bench_function("cubic-sfqcodel-on-calibration-network", |b| {
        let sfq = with_sfq_codel(&net);
        b.iter(|| run_homogeneous(&sfq, &Scheme::Cubic, 1, BENCH_SECS));
    });
    g.finish();
}

fn bench_fig2_link_speed(c: &mut Criterion) {
    let taos = link_speed::trained_taos();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    // one mid-range and one extreme speed point
    for speed in [32.0, 1000.0] {
        let rate = speed * 1e6;
        let net = dumbbell(
            2,
            rate,
            0.150,
            QueueSpec::drop_tail_bdp(rate, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        );
        let s = Scheme::tao(taos[0].tree.clone(), &taos[0].name);
        g.bench_function(format!("tao-1000x-at-{speed}mbps"), |b| {
            b.iter(|| run_homogeneous(&net, &s, 1, BENCH_SECS.min(3.0)));
        });
    }
    g.finish();
}

fn bench_fig3_multiplexing(c: &mut Criterion) {
    let taos = multiplexing::trained_taos();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for n in [2usize, 100] {
        let net = dumbbell(
            n,
            15e6,
            0.150,
            QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        );
        // tao-mux-100 tested at both extremes of multiplexing
        let tao = &taos[4];
        let s = Scheme::tao(tao.tree.clone(), &tao.name);
        g.bench_function(format!("tao-mux-100-with-{n}-senders"), |b| {
            b.iter(|| run_homogeneous(&net, &s, 1, BENCH_SECS));
        });
    }
    g.finish();
}

fn bench_fig4_rtt(c: &mut Criterion) {
    let taos = rtt::trained_taos();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for rtt_ms in [10.0, 150.0] {
        let rtt_s: f64 = rtt_ms / 1e3;
        let net = dumbbell(
            2,
            33e6,
            rtt_s,
            QueueSpec::drop_tail_bdp(33e6, rtt_s, 5.0),
            WorkloadSpec::on_off_1s(),
        );
        let tao = &taos[1]; // tao-rtt-145-155, the paper's surprise winner
        let s = Scheme::tao(tao.tree.clone(), &tao.name);
        g.bench_function(format!("tao-rtt-145-155-at-{rtt_ms}ms"), |b| {
            b.iter(|| run_homogeneous(&net, &s, 1, BENCH_SECS));
        });
    }
    g.finish();
}

fn bench_fig6_topology(c: &mut Criterion) {
    let (one, two) = topology::trained_taos();
    let net = topology::test_network(30.0, 100.0);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for (label, tao) in [
        ("one-bottleneck-model", &one),
        ("two-bottleneck-model", &two),
    ] {
        let s = Scheme::tao(tao.tree.clone(), label);
        g.bench_function(format!("{label}-on-parking-lot"), |b| {
            b.iter(|| run_homogeneous(&net, &s, 1, BENCH_SECS));
        });
    }
    g.finish();
}

fn bench_fig7_tcp_awareness(c: &mut Criterion) {
    let (naive, aware) = tcp_aware::trained_taos();
    let net = tcp_aware::test_network();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for (label, tao) in [("tcp-naive", &naive), ("tcp-aware", &aware)] {
        let s = Scheme::tao(tao.tree.clone(), label);
        g.bench_function(format!("{label}-vs-newreno"), |b| {
            b.iter(|| run_mix(&net, &[s.clone(), Scheme::NewReno], 1, BENCH_SECS));
        });
    }
    g.finish();
}

fn bench_fig8_time_domain(c: &mut Criterion) {
    let (_, aware) = tcp_aware::trained_taos();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("traced-tcp-pulse", |b| {
        b.iter(|| tcp_aware::time_domain(&aware.tree, "TCP-aware", 1));
    });
    g.finish();
}

fn bench_fig9_diversity(c: &mut Criterion) {
    let [_, _, tpt_coopt, del_coopt] = diversity::trained_taos();
    let net = diversity::test_network(2);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("co-optimized-mixed-pair", |b| {
        let mix = [
            Scheme::tao(tpt_coopt.tree.clone(), "tpt"),
            Scheme::tao(del_coopt.tree.clone(), "del"),
        ];
        b.iter(|| run_mix(&net, &mix, 1, BENCH_SECS));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_calibration,
    bench_fig2_link_speed,
    bench_fig3_multiplexing,
    bench_fig4_rtt,
    bench_fig6_topology,
    bench_fig7_tcp_awareness,
    bench_fig8_time_domain,
    bench_fig9_diversity
);
criterion_main!(benches);
