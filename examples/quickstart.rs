//! Quickstart: simulate TCP Cubic and a hand-built Tao protocol on a
//! shared bottleneck (each against its own kind, as in Fig 1) and print
//! the throughput/delay operating points.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learnability::lcc_core::{run_homogeneous, Scheme};
use learnability::netsim::prelude::*;
use learnability::protocols::{Action, WhiskerTree};

fn main() {
    // A 20 Mbps dumbbell with 100 ms RTT, 5 BDP of drop-tail buffer, and
    // two always-on senders.
    let net = dumbbell(
        2,
        20e6,
        0.100,
        QueueSpec::drop_tail_bdp(20e6, 0.100, 5.0),
        WorkloadSpec::AlwaysOn,
    );

    // A one-whisker Tao protocol: on every ack, window <- 0.99*window + 1,
    // paced at >= 0.4 ms between packets. The fixed point (100 packets per
    // sender) sits just above each sender's half-share of the path BDP
    // (~83 packets), so the link fills with only a small standing queue.
    // (Trained multi-whisker protocols live under assets/ — see the
    // train_protocol example.)
    let tao_tree = WhiskerTree::uniform(Action::new(0.99, 1.0, 0.4));

    println!("20 Mbps dumbbell, 100 ms RTT, two senders of the same kind, 30 s:");
    for scheme in [Scheme::tao(tao_tree, "tao-demo"), Scheme::Cubic] {
        let out = run_homogeneous(&net, &scheme, /* seed */ 1, /* seconds */ 30.0);
        let tpt: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        let qd: f64 = out
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / 2.0;
        println!(
            "  {:<10} total {:>6.2} Mbps, mean queueing delay {:>7.2} ms, utilization {:>5.1}%",
            scheme.label(),
            tpt / 1e6,
            qd * 1e3,
            out.utilization(0, 20e6) * 100.0,
        );
    }
    println!(
        "\nsame link, same load: the windowed-and-paced protocol holds the queue near\n\
         empty while Cubic fills the whole 5-BDP buffer. The paper's question is how\n\
         well an *optimizer* can discover such protocols from a network model alone."
    );
}
