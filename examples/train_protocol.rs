//! Design a congestion-control protocol from scratch with the Remy
//! optimizer, then race it against TCP Cubic on its training network.
//!
//! This is the paper's §3 pipeline end to end: pick a network model
//! (training scenarios), pick an objective, let the optimizer search the
//! whisker-tree space, and evaluate the result.
//!
//! ```sh
//! cargo run --release --example train_protocol
//! ```
//! (Takes a minute or two: it runs a reduced-budget Remy optimization.)

use learnability::lcc_core::{run_homogeneous, Scheme};
use learnability::netsim::prelude::*;
use learnability::remy::prelude::*;

fn main() {
    // The designer's network model: a dumbbell whose link speed is only
    // known to lie between 8 and 16 Mbps, 150 ms RTT, two ON/OFF senders.
    let specs = vec![ScenarioSpec::link_speed_range(8.0, 16.0)];

    // A small training budget (the paper used a CPU-year per protocol;
    // shapes survive much smaller budgets).
    let cfg = OptimizerConfig {
        draws_per_eval: 6,
        sim_duration_s: 8.0,
        rounds: 4,
        max_leaves: 4,
        scales: vec![4.0, 1.0],
        ..Default::default()
    };

    println!("training a Tao protocol for 8-16 Mbps / 150 ms (reduced budget)...");
    let t0 = std::time::Instant::now();
    let trained = Optimizer::new(specs, cfg).optimize("tao-example");
    println!(
        "done in {:.1}s; training score {:.3}\n{}",
        t0.elapsed().as_secs_f64(),
        trained.score,
        trained.tree
    );

    // Evaluate on a network drawn from the middle of the training range.
    let net = dumbbell(
        2,
        12e6,
        0.150,
        QueueSpec::drop_tail_bdp(12e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let tao = run_homogeneous(&net, &Scheme::tao(trained.tree.clone(), "tao"), 7, 60.0);
    let cubic = run_homogeneous(&net, &Scheme::Cubic, 7, 60.0);

    println!("12 Mbps test network (60 s, 2 ON/OFF senders):");
    for (name, out) in [("tao-example", &tao), ("cubic", &cubic)] {
        let tpt: f64 =
            out.flows.iter().map(|f| f.throughput_bps).sum::<f64>() / out.flows.len() as f64;
        let qd: f64 = out
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / out.flows.len() as f64;
        println!(
            "  {:<12} mean throughput {:>5.2} Mbps, mean queueing delay {:>7.2} ms",
            name,
            tpt / 1e6,
            qd * 1e3
        );
    }
    println!("(the Tao should match Cubic's throughput at far lower delay)");
}
