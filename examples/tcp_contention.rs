//! The TCP-awareness story (§4.5) in miniature: what happens when a
//! delay-minded protocol meets incumbent TCP cross-traffic?
//!
//! Runs three contention scenarios on the paper's Fig 7 network (10 Mbps,
//! 100 ms RTT, 250 kB buffer): a gentle paced protocol alone, NewReno
//! alone, and the two together — showing the "squeezed out" effect that
//! motivates TCP-aware training.
//!
//! ```sh
//! cargo run --release --example tcp_contention
//! ```

use learnability::lcc_core::{run_mix, Scheme};
use learnability::netsim::prelude::*;
use learnability::protocols::{Action, WhiskerTree};

fn report(title: &str, labels: &[&str], out: &RunOutcome) {
    println!("{title}");
    for (label, flow) in labels.iter().zip(&out.flows) {
        println!(
            "  {:<10} {:>5.2} Mbps, queueing delay {:>6.1} ms, {} losses",
            label,
            flow.throughput_bps / 1e6,
            flow.avg_queueing_delay_s * 1e3,
            flow.losses,
        );
    }
}

fn main() {
    let net = |n| {
        netsim::topology::dumbbell_mixed(
            10e6,
            0.100,
            QueueSpec::DropTail {
                capacity_bytes: Some(250_000),
            },
            vec![WorkloadSpec::almost_continuous(); n],
        )
    };

    // A delay-minded protocol: windows shrink whenever the queue builds
    // (it keeps ~9 packets in flight and paces lightly).
    let gentle = || {
        Scheme::tao(
            WhiskerTree::uniform(Action::new(0.9, 1.0, 1.0)),
            "delay-minded",
        )
    };

    let alone = run_mix(&net(2), &[gentle(), gentle()], 3, 40.0);
    report(
        "two delay-minded senders, no TCP:",
        &["gentle-1", "gentle-2"],
        &alone,
    );

    let tcp_only = run_mix(&net(2), &[Scheme::NewReno, Scheme::NewReno], 3, 40.0);
    report(
        "two NewReno senders:",
        &["newreno-1", "newreno-2"],
        &tcp_only,
    );

    let mixed = run_mix(&net(2), &[gentle(), Scheme::NewReno], 3, 40.0);
    report(
        "delay-minded sender vs NewReno:",
        &["gentle", "newreno"],
        &mixed,
    );

    let fair = 5.0;
    let got = mixed.flows[0].throughput_bps / 1e6;
    println!(
        "\nfair share is {fair:.1} Mbps; the delay-minded sender got {got:.2} Mbps \
         ({:.0}% of fair share) — this is the squeeze that TCP-aware training fixes \
         (run `cargo run --release --bin fig7` for the trained protocols).",
        100.0 * got / fair
    );
}
