//! The two-bottleneck "parking lot" of Fig 5: three flows, two queues,
//! and a proportional-fairness puzzle.
//!
//! Flow 0 crosses both links and contends with Flow 1 (link A) and Flow 2
//! (link B). Proportional fairness gives the long flow *less* than an
//! equal split (it consumes resources at two bottlenecks). This example
//! runs Cubic on the topology and compares against the omniscient
//! allocation computed analytically.
//!
//! ```sh
//! cargo run --release --example parking_lot
//! ```

use learnability::lcc_core::{omniscient, run_homogeneous, Scheme};
use learnability::netsim::prelude::*;

fn main() {
    for (r1, r2) in [(30e6, 30e6), (10e6, 100e6)] {
        let net = parking_lot(
            r1,
            r2,
            0.075, // 75 ms of round-trip delay per hop, as in Fig 5
            QueueSpec::drop_tail_bdp(r1, 0.150, 5.0),
            QueueSpec::drop_tail_bdp(r2, 0.150, 5.0),
            WorkloadSpec::AlwaysOn,
        );

        println!(
            "parking lot: link A = {} Mbps, link B = {} Mbps",
            r1 / 1e6,
            r2 / 1e6
        );

        let ideal = omniscient(&net);
        println!("  proportionally fair allocation (omniscient):");
        for (i, f) in ideal.iter().enumerate() {
            println!(
                "    flow {i} ({}): {:>6.2} Mbps at {:>5.1} ms one-way",
                ["A->C (both links)", "A->B", "B->C"][i],
                f.throughput_bps / 1e6,
                f.delay_s * 1e3
            );
        }

        let out = run_homogeneous(&net, &Scheme::Cubic, 11, 40.0);
        println!("  TCP Cubic, 40 s simulation:");
        for f in &out.flows {
            println!(
                "    flow {} : {:>6.2} Mbps at {:>5.1} ms one-way ({} losses)",
                f.flow,
                f.throughput_bps / 1e6,
                f.avg_delay_s * 1e3,
                f.losses
            );
        }
        println!();
    }
    println!(
        "the study's question: how much does a protocol lose by being designed \
         for a one-bottleneck model of this network? (cargo run --release --bin fig6)"
    );
}
