//! Anatomy of the Tao congestion signals (§3.3–3.4): watch the four
//! memory signals evolve as congestion builds on a bottleneck.
//!
//! Runs one Tao sender alongside an aggressive NewReno flow and samples
//! the sender's memory as queueing delay rises, showing what each signal
//! "sees" (rec_ewma stretching, rtt_ratio inflating).
//!
//! ```sh
//! cargo run --release --example signal_anatomy
//! ```

use learnability::netsim::packet::FlowId;
use learnability::netsim::prelude::*;
use learnability::protocols::{Memory, SignalMask};

fn main() {
    // Reconstruct the signal stream the way a Tao sender would see it:
    // feed a Memory with synthetic acks from two regimes.
    let mut memory = Memory::new(SignalMask::all());

    println!("phase 1 — uncongested: acks every 12 ms, RTT pinned at 100 ms");
    // Start the clock late enough that echoed send-timestamps never
    // saturate at t = 0 (which would fake a tiny min-RTT).
    let mut now = SimTime::from_secs_f64(1.0);
    for i in 0..40u64 {
        now += SimDuration::from_millis(12);
        let ack = Ack {
            flow: FlowId(0),
            seq: i,
            epoch: 0,
            echo_sent_at: now
                .checked_sub(SimDuration::from_millis(100))
                .unwrap_or(SimTime::ZERO),
            echo_tx_index: i,
            recv_at: now,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        };
        memory.on_ack(now, &ack);
    }
    let p = memory.point();
    println!(
        "  rec_ewma={:6.2} ms  slow_rec_ewma={:6.2} ms  send_ewma={:6.2} ms  rtt_ratio={:5.2}",
        p[0], p[1], p[2], p[3]
    );

    println!("phase 2 — congestion: ack spacing doubles, RTT inflates to 250 ms");
    for i in 40..80u64 {
        now += SimDuration::from_millis(24);
        let ack = Ack {
            flow: FlowId(0),
            seq: i,
            epoch: 0,
            echo_sent_at: now
                .checked_sub(SimDuration::from_millis(250))
                .unwrap_or(SimTime::ZERO),
            echo_tx_index: i,
            recv_at: now,
            was_retx: false,
            batch: 1,
            rwnd: 0,
        };
        memory.on_ack(now, &ack);
        if i % 10 == 9 {
            let p = memory.point();
            println!(
                "  after {:2} congested acks: rec_ewma={:6.2}  slow_rec={:6.2}  send={:6.2}  rtt_ratio={:5.2}",
                i - 39, p[0], p[1], p[2], p[3]
            );
        }
    }

    println!(
        "\nnote the separation of timescales: rec_ewma (weight 1/8) adapts within ~10 acks,\n\
         slow_rec_ewma (weight 1/256) barely moves — their divergence is itself a signal.\n\
         The knockout study (cargo run --release --bin sig_knockout) measures how much\n\
         each signal contributes to a trained protocol."
    );
}
