//! Property-based tests over the whole stack: simulator invariants must
//! hold for arbitrary (bounded) network configurations and protocol
//! parameters, and the whisker-tree data structure must stay a partition
//! of memory space under arbitrary split sequences.

use learnability::netsim::prelude::*;
use learnability::protocols::whisker::{LeafId, SIGNAL_MAX};
use learnability::protocols::{Action, WhiskerTree, NUM_SIGNALS};
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = Action> {
    (0.0f64..2.0, -32.0f64..32.0, 0.01f64..50.0).prop_map(|(m, b, tau)| Action::new(m, b, tau))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-flow run on any sane dumbbell conserves bytes and
    /// respects the line rate.
    #[test]
    fn simulator_conserves_for_any_action(
        action in arb_action(),
        rate_mbps in 1.0f64..50.0,
        rtt_ms in 10.0f64..300.0,
        bdp_mult in 0.5f64..6.0,
        seed in 0u64..u64::MAX,
    ) {
        let rate = rate_mbps * 1e6;
        let rtt = rtt_ms / 1e3;
        let net = dumbbell(
            1,
            rate,
            rtt,
            QueueSpec::drop_tail_bdp(rate, rtt, bdp_mult),
            WorkloadSpec::AlwaysOn,
        );
        let scheme = learnability::lcc_core::Scheme::tao(
            WhiskerTree::uniform(action),
            "prop",
        );
        let out = learnability::lcc_core::run_homogeneous(&net, &scheme, seed, 5.0);
        let f = &out.flows[0];
        prop_assert!(f.throughput_bps <= rate * 1.02);
        if f.packets_delivered > 0 {
            prop_assert!(f.avg_delay_s >= rtt / 2.0 * 0.999);
        }
        prop_assert!(out.link_bytes[0] as f64 <= rate / 8.0 * 5.0 * 1.01);
        prop_assert!(f.retransmissions <= f.transmissions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After arbitrary split sequences the whisker tree remains a
    /// partition: every point routes to exactly one leaf whose domain
    /// contains it.
    #[test]
    fn whisker_tree_stays_a_partition(
        splits in proptest::collection::vec((0usize..8, 0usize..NUM_SIGNALS), 0..12),
        probes in proptest::collection::vec(
            (0.0f64..4000.0, 0.0f64..4000.0, 0.0f64..4000.0, 0.0f64..64.0),
            1..20
        ),
    ) {
        let mut tree = WhiskerTree::default_tree();
        for (leaf, dim) in splits {
            let n = tree.num_leaves();
            tree.split_leaf(LeafId(leaf % n), dim);
        }
        // Leaves tile the space: volumes sum to the whole.
        let total_volume: f64 = tree
            .leaves()
            .iter()
            .map(|w| (0..NUM_SIGNALS).map(|d| w.domain.width(d)).product::<f64>())
            .sum();
        let whole: f64 = SIGNAL_MAX.iter().product();
        prop_assert!(((total_volume - whole) / whole).abs() < 1e-9);

        for (a, b, c, d) in probes {
            let p = [a, b, c, d];
            // exactly one leaf contains the point
            let holders = tree
                .leaves()
                .iter()
                .filter(|w| w.domain.contains(&p))
                .count();
            prop_assert_eq!(holders, 1, "point {:?} in {} leaves", p, holders);
            // and lookup agrees with that leaf
            let act = tree.action_for(&p);
            let holder = tree.leaves().into_iter().find(|w| w.domain.contains(&p)).unwrap();
            prop_assert_eq!(act, holder.action);
        }
    }

    /// Applying any action sequence keeps the window within legal bounds.
    #[test]
    fn window_stays_bounded(
        actions in proptest::collection::vec(arb_action(), 1..50),
        start in 1.0f64..1000.0,
    ) {
        let mut w = start;
        for a in actions {
            w = a.apply_to_window(w);
            prop_assert!((1.0..=1e6).contains(&w), "window escaped: {}", w);
        }
    }

    /// Proportional fairness on a single link is an exact equal split for
    /// any flow count, and saturates the link.
    #[test]
    fn proportional_fair_single_link(n in 1usize..12, cap in 1e6f64..1e9) {
        let routes: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
        let rates = learnability::lcc_core::proportional_fair(&[cap], &routes);
        let total: f64 = rates.iter().sum();
        prop_assert!((total - cap).abs() / cap < 1e-6);
        for r in &rates {
            prop_assert!((r - cap / n as f64).abs() / cap < 1e-6);
        }
    }

    /// Summary statistics are order-invariant and bounded by extremes.
    #[test]
    fn summarize_properties(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s1 = learnability::lcc_core::summarize(&xs);
        xs.reverse();
        let s2 = learnability::lcc_core::summarize(&xs);
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert!((s1.median - s2.median).abs() < 1e-9);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s1.median >= lo && s1.median <= hi);
        prop_assert!(s1.mean >= lo - 1e-9 && s1.mean <= hi + 1e-9);
    }
}
