//! Cross-crate invariant tests: whatever the protocol does, the network
//! must conserve packets, bound delays from below by propagation, and
//! never deliver more than the line rate.

use learnability::lcc_core::{run_homogeneous, run_mix, Scheme};
use learnability::netsim::prelude::*;
use learnability::protocols::{Action, WhiskerTree};

fn schemes_under_test() -> Vec<Scheme> {
    vec![
        Scheme::Cubic,
        Scheme::NewReno,
        Scheme::tao(
            WhiskerTree::uniform(Action::new(1.0, 1.0, 0.25)),
            "tao-grow",
        ),
        Scheme::tao(
            WhiskerTree::uniform(Action::new(0.6, 2.0, 2.0)),
            "tao-paced",
        ),
    ]
}

fn check_invariants(net: &NetworkConfig, out: &netsim::sim::RunOutcome, duration_s: f64) {
    for f in &out.flows {
        // Throughput can never exceed the flow's bottleneck rate.
        let bottleneck = net.bottleneck_rate(f.flow);
        assert!(
            f.throughput_bps <= bottleneck * 1.02,
            "flow {} throughput {} exceeds bottleneck {}",
            f.flow,
            f.throughput_bps,
            bottleneck
        );
        // Delay is bounded below by propagation.
        if f.packets_delivered > 0 {
            assert!(
                f.avg_delay_s >= f.min_one_way_s * 0.999,
                "flow {} avg delay {} below propagation {}",
                f.flow,
                f.avg_delay_s,
                f.min_one_way_s
            );
        }
        // ON time fits in the run.
        assert!(f.on_time_s <= duration_s * 1.001);
        // Deliveries imply transmissions.
        assert!(f.transmissions >= f.packets_delivered);
        assert!(f.retransmissions <= f.transmissions);
    }
    // Link counters: a link cannot transmit more than rate * time.
    for (l, spec) in net.links.iter().enumerate() {
        let max_bytes = spec.rate_bps / 8.0 * duration_s;
        assert!(
            out.link_bytes[l] as f64 <= max_bytes * 1.01,
            "link {l} transmitted {} > capacity {}",
            out.link_bytes[l],
            max_bytes
        );
        let q = &out.link_queues[l];
        assert!(
            q.dequeued <= q.enqueued,
            "link {l} dequeued more than enqueued: {q:?}"
        );
    }
}

#[test]
fn invariants_on_dumbbell_all_schemes() {
    let duration = 12.0;
    for buffer in [
        QueueSpec::drop_tail_bdp(8e6, 0.100, 2.0),
        QueueSpec::infinite(),
    ] {
        let net = dumbbell(2, 8e6, 0.100, buffer, WorkloadSpec::on_off_1s());
        for scheme in schemes_under_test() {
            let out = run_homogeneous(&net, &scheme, 42, duration);
            check_invariants(&net, &out, duration);
        }
    }
}

#[test]
fn invariants_on_parking_lot() {
    let duration = 12.0;
    let net = parking_lot(
        8e6,
        20e6,
        0.075,
        QueueSpec::drop_tail_bdp(8e6, 0.150, 3.0),
        QueueSpec::drop_tail_bdp(20e6, 0.150, 3.0),
        WorkloadSpec::on_off_1s(),
    );
    for scheme in schemes_under_test() {
        let out = run_homogeneous(&net, &scheme, 7, duration);
        check_invariants(&net, &out, duration);
    }
}

#[test]
fn invariants_under_sfq_codel() {
    let duration = 12.0;
    let fifo = dumbbell(
        3,
        8e6,
        0.080,
        QueueSpec::drop_tail_bdp(8e6, 0.080, 3.0),
        WorkloadSpec::AlwaysOn,
    );
    let net = learnability::lcc_core::with_sfq_codel(&fifo);
    for scheme in schemes_under_test() {
        let out = run_homogeneous(&net, &scheme, 3, duration);
        check_invariants(&net, &out, duration);
    }
}

#[test]
fn mixed_population_conserves() {
    let duration = 15.0;
    let net = dumbbell(
        3,
        10e6,
        0.100,
        QueueSpec::drop_tail_bdp(10e6, 0.100, 2.0),
        WorkloadSpec::almost_continuous(),
    );
    let schemes = [
        Scheme::Cubic,
        Scheme::NewReno,
        Scheme::tao(WhiskerTree::uniform(Action::new(0.9, 1.0, 1.0)), "tao"),
    ];
    let out = run_mix(&net, &schemes, 9, duration);
    check_invariants(&net, &out, duration);
    // All three delivered something.
    for f in &out.flows {
        assert!(f.bytes_delivered > 0, "flow {} starved entirely", f.flow);
    }
}

#[test]
fn determinism_across_full_stack() {
    let net = dumbbell(
        2,
        12e6,
        0.120,
        QueueSpec::drop_tail_bdp(12e6, 0.120, 4.0),
        WorkloadSpec::on_off_1s(),
    );
    let run = || {
        let out = run_homogeneous(&net, &Scheme::Cubic, 1234, 10.0);
        out.flows
            .iter()
            .map(|f| (f.bytes_delivered, f.packets_delivered, f.losses))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
