//! End-to-end pipeline tests: design a protocol with the optimizer, save
//! it, load it back, and verify it behaves sanely on its design network.

use learnability::lcc_core::{run_homogeneous, Scheme};
use learnability::netsim::prelude::*;
use learnability::remy::prelude::*;
use learnability::remy::serialize;

/// A very small budget so the test runs in seconds even in debug builds.
fn tiny_cfg() -> OptimizerConfig {
    OptimizerConfig {
        draws_per_eval: 2,
        sim_duration_s: 3.0,
        rounds: 1,
        max_leaves: 1,
        scales: vec![4.0],
        threads: 2,
        seed: 77,
        event_budget: 1_500_000,
        masks: Vec::new(),
        scheduler: Default::default(),
        verbose: false,
    }
}

#[test]
fn train_save_load_run() {
    let specs = vec![ScenarioSpec::link_speed_range(8.0, 12.0)];
    let trained = Optimizer::new(specs, tiny_cfg()).optimize("e2e-test");
    assert!(trained.score.is_finite());

    // Round-trip through JSON.
    let json = serialize::to_json(&trained);
    let loaded = serialize::from_json(&json).expect("parses back");
    assert_eq!(loaded.tree, trained.tree);

    // The trained protocol must move data on its design network.
    let net = dumbbell(
        2,
        10e6,
        0.150,
        QueueSpec::drop_tail_bdp(10e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let out = run_homogeneous(&net, &Scheme::tao(loaded.tree, "e2e"), 5, 12.0);
    let delivered: u64 = out.flows.iter().map(|f| f.bytes_delivered).sum();
    assert!(
        delivered > 100_000,
        "trained protocol delivered {delivered} bytes"
    );
}

#[test]
fn training_beats_pathological_start_on_fresh_draws() {
    use learnability::protocols::{Action, WhiskerTree};
    // Always-on senders give the objective a smooth gradient in the
    // pacing coordinate even at tiny simulation budgets (1 s ON/OFF
    // bursts quantize deliveries too coarsely for a 3 s simulation).
    let specs = vec![ScenarioSpec {
        topology: TopologySpec::Dumbbell {
            link_mbps: Sample::Fixed(10.0),
            rtt_ms: Sample::Fixed(100.0),
        },
        classes: vec![SenderClassSpec {
            role: RoleSpec::Tao { slot: 0 },
            count: CountSpec::Fixed(2),
            workload: netsim::workload::WorkloadSpec::AlwaysOn,
            delta: 1.0,
        }],
        buffer: BufferSpec::BdpMultiple(5.0),
    }];
    // Start from a pathologically slow protocol (~3 pkt/s pacing).
    let bad = WhiskerTree::uniform(Action::new(0.0, 0.0, 300.0));
    let trained = Optimizer::new(specs.clone(), tiny_cfg()).optimize_from(bad.clone(), "rescue");

    let scenarios = learnability::remy::draw_scenarios(&specs, 3, 4242);
    let cfg = EvalConfig {
        sim_duration_s: 3.0,
        event_budget: 1_500_000,
        threads: 2,
        ..Default::default()
    };
    let u_bad =
        learnability::remy::evaluate_scenarios(&scenarios, std::slice::from_ref(&bad), &cfg)
            .mean_utility;
    let u_new = learnability::remy::evaluate_scenarios(
        &scenarios,
        std::slice::from_ref(&trained.tree),
        &cfg,
    )
    .mean_utility;
    assert!(
        u_new > u_bad + 1.0,
        "optimizer must escape the pathological start: {u_bad:.2} -> {u_new:.2}"
    );
}

#[test]
fn knockout_mask_flows_through_training_and_execution() {
    use learnability::protocols::{Signal, SignalMask, TaoCc, WhiskerTree};
    let mut cfg = tiny_cfg();
    cfg.masks = vec![SignalMask::without(Signal::RttRatio)];
    let specs = vec![ScenarioSpec::calibration()];
    let trained = Optimizer::new(specs, cfg).optimize("masked");

    // Execute with the same mask: the rtt_ratio coordinate of the memory
    // point must always read zero.
    let cc = TaoCc::with_mask(
        trained.tree.clone(),
        SignalMask::without(Signal::RttRatio),
        "masked",
    );
    let _ = cc; // construction suffices; memory masking is unit-tested

    // And the tree itself is a valid WhiskerTree.
    assert!(trained.tree.num_leaves() >= 1);
    let _clone: WhiskerTree = trained.tree.clone();
}

#[test]
fn co_optimization_produces_two_distinct_protocols() {
    use learnability::protocols::WhiskerTree;
    let specs = vec![ScenarioSpec::diversity()];
    let mut cfg = tiny_cfg();
    cfg.rounds = 1;
    let out = Optimizer::new(specs, cfg).co_optimize(
        vec![WhiskerTree::default_tree(), WhiskerTree::default_tree()],
        1,
        &["tpt", "del"],
    );
    assert_eq!(out.len(), 2);
    // With δ = 0.1 vs δ = 10 the optimizer should usually move the two
    // slots differently; at minimum both must remain executable.
    for p in &out {
        assert!(p.tree.num_leaves() >= 1);
        assert!(p.score.is_finite());
    }
}
