//! Behavioural tests pinning the qualitative phenomena the paper's
//! experiments rely on — independent of any trained asset.

use learnability::lcc_core::{omniscient, run_homogeneous, run_mix, with_sfq_codel, Scheme};
use learnability::netsim::prelude::*;
use learnability::protocols::{Action, WhiskerTree};

/// Cubic fills drop-tail buffers: its queueing delay grows with buffer
/// size while throughput stays pinned at the link rate.
#[test]
fn cubic_queueing_grows_with_buffer() {
    let mut delays = Vec::new();
    for bdp_mult in [1.0, 5.0] {
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::drop_tail_bdp(10e6, 0.100, bdp_mult),
            WorkloadSpec::AlwaysOn,
        );
        let out = run_homogeneous(&net, &Scheme::Cubic, 3, 20.0);
        assert!(out.flows[0].throughput_bps > 8.5e6);
        delays.push(out.flows[0].avg_queueing_delay_s);
    }
    assert!(
        delays[1] > delays[0] * 2.0,
        "5x buffer should mean much more standing queue: {delays:?}"
    );
}

/// sfqCoDel protects a small flow from an aggressive one (the scheduling
/// half of Cubic-over-sfqCoDel).
#[test]
fn sfq_codel_isolates_flows() {
    let fifo = dumbbell(
        2,
        10e6,
        0.100,
        QueueSpec::drop_tail_bdp(10e6, 0.100, 5.0),
        WorkloadSpec::AlwaysOn,
    );
    let sfq = with_sfq_codel(&fifo);
    // A paced, delay-minded sender vs Cubic.
    let gentle = Scheme::tao(WhiskerTree::uniform(Action::new(0.9, 1.0, 1.0)), "gentle");
    let mix = [gentle, Scheme::Cubic];
    let out_fifo = run_mix(&fifo, &mix, 5, 30.0);
    let out_sfq = run_mix(&sfq, &mix, 5, 30.0);
    // Under FIFO the gentle flow is squeezed; fair queueing must restore
    // a large share of its throughput.
    assert!(
        out_sfq.flows[0].throughput_bps > out_fifo.flows[0].throughput_bps * 2.0,
        "fifo={:.2}Mbps sfq={:.2}Mbps",
        out_fifo.flows[0].throughput_bps / 1e6,
        out_sfq.flows[0].throughput_bps / 1e6
    );
}

/// The squeeze phenomenon of §4.5: a delay-minded protocol loses its fair
/// share to NewReno on a FIFO bottleneck.
#[test]
fn delay_minded_protocol_squeezed_by_tcp() {
    let net = netsim::topology::dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::AlwaysOn; 2],
    );
    let gentle = Scheme::tao(WhiskerTree::uniform(Action::new(0.9, 1.0, 1.0)), "gentle");
    let out = run_mix(&net, &[gentle, Scheme::NewReno], 3, 30.0);
    let (gentle_tpt, tcp_tpt) = (out.flows[0].throughput_bps, out.flows[1].throughput_bps);
    assert!(
        gentle_tpt < tcp_tpt / 2.0,
        "gentle {gentle_tpt} should be squeezed by TCP {tcp_tpt}"
    );
}

/// An over-aggressive protocol on a no-drop buffer builds unbounded
/// queues (the Fig 3 right-panel failure mode).
#[test]
fn aggressive_protocol_floods_infinite_buffer() {
    let net = dumbbell(
        10,
        15e6,
        0.150,
        QueueSpec::infinite(),
        WorkloadSpec::AlwaysOn,
    );
    let aggressive = Scheme::tao(
        WhiskerTree::uniform(Action::new(1.0, 4.0, 0.05)),
        "aggressive",
    );
    let out = run_homogeneous(&net, &aggressive, 3, 20.0);
    let mean_qd: f64 = out
        .flows
        .iter()
        .map(|f| f.avg_queueing_delay_s)
        .sum::<f64>()
        / out.flows.len() as f64;
    assert!(
        mean_qd > 0.5,
        "10 aggressive senders on a no-drop link must build seconds of queue, got {mean_qd}"
    );
    assert_eq!(
        out.flows.iter().map(|f| f.drops.forward).sum::<u64>(),
        0,
        "no-drop buffer never drops"
    );
}

/// And the same protocol on a finite buffer loses packets and wastes
/// capacity on retransmissions instead.
#[test]
fn aggressive_protocol_drops_on_finite_buffer() {
    let net = dumbbell(
        10,
        15e6,
        0.150,
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
        WorkloadSpec::AlwaysOn,
    );
    let aggressive = Scheme::tao(
        WhiskerTree::uniform(Action::new(1.0, 4.0, 0.05)),
        "aggressive",
    );
    let out = run_homogeneous(&net, &aggressive, 3, 20.0);
    let drops: u64 = out.flows.iter().map(|f| f.drops.forward).sum();
    let retx: u64 = out.flows.iter().map(|f| f.retransmissions).sum();
    assert!(
        drops > 100,
        "finite buffer under flood must drop (got {drops})"
    );
    assert!(
        retx > 100,
        "drops must trigger retransmissions (got {retx})"
    );
}

/// NewReno against NewReno shares a bottleneck roughly fairly.
#[test]
fn newreno_intra_protocol_fairness() {
    let net = dumbbell(
        2,
        10e6,
        0.100,
        QueueSpec::drop_tail_bdp(10e6, 0.100, 2.0),
        WorkloadSpec::AlwaysOn,
    );
    let out = run_homogeneous(&net, &Scheme::NewReno, 17, 60.0);
    let (a, b) = (out.flows[0].throughput_bps, out.flows[1].throughput_bps);
    let jain = (a + b).powi(2) / (2.0 * (a * a + b * b));
    assert!(
        jain > 0.75,
        "Jain index {jain:.3} too unfair ({a:.0} vs {b:.0})"
    );
}

/// The omniscient allocation dominates what any simulated protocol
/// achieves in objective terms (it is the upper bound of Figs 2-4).
#[test]
fn omniscient_dominates_simulated_schemes() {
    let net = dumbbell(
        2,
        16e6,
        0.100,
        QueueSpec::drop_tail_bdp(16e6, 0.100, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let ideal = omniscient(&net);
    let obj = learnability::remy::Objective::default();
    let ideal_u = obj.utility(ideal[0].throughput_bps, ideal[0].delay_s);
    for scheme in [Scheme::Cubic, Scheme::NewReno] {
        let out = run_homogeneous(&net, &scheme, 23, 30.0);
        for f in &out.flows {
            if let Some(u) = obj.flow_utility(f) {
                assert!(
                    u <= ideal_u + 0.3,
                    "{} beat the omniscient bound: {u:.2} > {ideal_u:.2}",
                    scheme.label()
                );
            }
        }
    }
}

/// §4.5's historical footnote, reproduced: TCP Vegas performs well
/// against itself but is squeezed out by loss-driven TCP.
#[test]
fn vegas_good_alone_squeezed_by_newreno() {
    use learnability::netsim::transport::CongestionControl;
    use learnability::protocols::Vegas;
    let net = netsim::topology::dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::AlwaysOn; 2],
    );
    // Homogeneous: two Vegas flows share well at low delay.
    let homo = {
        let ccs: Vec<Box<dyn CongestionControl>> =
            vec![Box::new(Vegas::new()), Box::new(Vegas::new())];
        let mut sim = netsim::sim::Simulation::new(&net, ccs, 5);
        sim.run(netsim::time::SimDuration::from_secs(30))
    };
    let homo_total: f64 = homo.flows.iter().map(|f| f.throughput_bps).sum();
    let homo_qd: f64 = homo
        .flows
        .iter()
        .map(|f| f.avg_queueing_delay_s)
        .sum::<f64>()
        / 2.0;
    assert!(
        homo_total > 8.5e6,
        "Vegas pair should fill the link: {homo_total}"
    );
    assert!(
        homo_qd < 0.050,
        "Vegas pair should keep queues short: {homo_qd}"
    );

    // Mixed: Vegas vs NewReno — Vegas backs off as NewReno fills the
    // buffer, losing well over half the fair share.
    let mixed = {
        let ccs: Vec<Box<dyn CongestionControl>> = vec![
            Box::new(Vegas::new()),
            Box::new(learnability::protocols::NewReno::new()),
        ];
        let mut sim = netsim::sim::Simulation::new(&net, ccs, 5);
        sim.run(netsim::time::SimDuration::from_secs(30))
    };
    let vegas_tpt = mixed.flows[0].throughput_bps;
    let reno_tpt = mixed.flows[1].throughput_bps;
    assert!(
        vegas_tpt < reno_tpt / 2.0,
        "Vegas should be squeezed: vegas={vegas_tpt:.0} reno={reno_tpt:.0}"
    );
}
